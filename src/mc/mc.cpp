// mw::mc execution engine: cooperative serialization, schedule exploration
// (DFS with preemption bounding / seeded random sampling / replay), and the
// vector-clock happens-before race detector.
//
// This file is the one sanctioned home of raw threading primitives outside
// common/sync.hpp and the ThreadPool: the checker IS the instrumentation
// layer the wrappers call into, so routing it through the wrappers would
// recurse. Every use below carries an explicit mw-lint allow.

#include "mc/mc.hpp"

#include <array>
#include <condition_variable>  // mw-lint: allow(raw-sync-primitive) checker-internal baton
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>  // mw-lint: allow(raw-sync-primitive) checker-internal baton
#include <random>
#include <sstream>
#include <thread>  // mw-lint: allow(naked-thread) checker owns its worker lifecycle
#include <vector>

#include "common/error.hpp"

namespace mw::mc {
namespace {

constexpr std::size_t kMaxThreads = Options::kMaxThreads;
constexpr std::size_t kEventTail = 48;  ///< events echoed with a failure

const char* op_name(Op op) noexcept {
    switch (op) {
        case Op::kAtomicLoad: return "atomic-load";
        case Op::kAtomicStore: return "atomic-store";
        case Op::kAtomicRmw: return "atomic-rmw";
        case Op::kMutexLock: return "mutex-lock";
        case Op::kMutexUnlock: return "mutex-unlock";
        case Op::kSharedLock: return "shared-lock";
        case Op::kSharedUnlock: return "shared-unlock";
        case Op::kYield: return "yield";
        case Op::kRaceRead: return "race-read";
        case Op::kRaceWrite: return "race-write";
    }
    return "?";
}

/// Fixed-width vector clock; component t is thread t's event count.
struct VectorClock {
    std::array<std::uint64_t, kMaxThreads> c{};

    void join(const VectorClock& other) noexcept {
        for (std::size_t i = 0; i < kMaxThreads; ++i) {
            if (other.c[i] > c[i]) c[i] = other.c[i];
        }
    }
    void clear() noexcept { c.fill(0); }
};

/// Thrown inside managed threads to unwind the current schedule after a
/// failure was recorded. Never escapes the thread wrapper.
struct AbortSchedule {};

/// One decision point of the DFS pick tree, persisted across runs.
struct Frame {
    std::vector<int> choices;     ///< runnable thread ids, current-first
    std::size_t index = 0;        ///< alternative this run takes
    int preemptions_before = 0;   ///< preemptions spent along the prefix
    bool current_first = false;   ///< choices[0] is the still-runnable current
                                  ///< thread, so index > 0 costs a preemption
};

struct ExploreState {
    std::vector<Frame> frames;      ///< DFS prefix (kExhaustive)
    std::vector<int> replay_picks;  ///< forced picks (kReplay via trace)
    std::uint64_t rng_seed = 0;     ///< effective seed (kRandom / kReplay)
    bool use_rng = false;
};

}  // namespace

// Execution and its satellites live at mw::mc scope (not the anonymous
// namespace) so the forward declaration in mc.hpp names the same type.
class Execution;
Execution* g_active = nullptr;                 ///< the running check()
thread_local struct ThreadRec* t_self = nullptr;  ///< managed-thread identity

struct ThreadRec {
    int id = -1;
    Execution* exec = nullptr;
    std::function<void()> fn;
    std::thread th;  // mw-lint: allow(naked-thread) managed checker thread

    enum class State { kRunnable, kBlockedSync, kBlockedJoin, kFinished };
    State state = State::kRunnable;
    const void* wait_addr = nullptr;  ///< kBlockedSync: the contended primitive
    bool go = false;                  ///< baton: this thread may run
    std::condition_variable cv;  // mw-lint: allow(raw-sync-primitive) baton wakeup
    VectorClock clock;
};

/// Per-atomic-object synchronization state (simplified release sequences:
/// a release store replaces the clock, an RMW extends it, a relaxed plain
/// store breaks it).
struct AtomicState {
    VectorClock release_clock;
};

/// FastTrack-style last-access state for instrumented non-atomic locations.
struct DataState {
    int last_writer = -1;
    std::uint64_t write_epoch = 0;
    const char* write_label = nullptr;
    std::array<std::uint64_t, kMaxThreads> read_epochs{};
    std::array<const char*, kMaxThreads> read_labels{};
};

struct MutexClock {
    VectorClock clock;  ///< joined at release, acquired at lock
};

struct Event {
    int tid;
    Op op;
    const void* addr;
    const char* label;
};

/// One schedule's cooperative execution. Exactly one managed thread runs at
/// a time; control transfers only inside schedule points, so the run is a
/// total order of instrumented operations determined by the pick sequence.
class Execution {
public:
    Execution(const Options& options, ExploreState& explore)
        : options_(options), explore_(explore) {
        if (explore_.use_rng) rng_.seed(explore_.rng_seed);
    }

    // -- driving (called from the unmanaged check() thread) -----------------

    void run(const std::function<void(Sim&)>& body) {
        {
            std::unique_lock<std::mutex> lk(mu_);  // mw-lint: allow(raw-sync-primitive) baton
            ThreadRec* rec = make_thread_locked([this, &body] {
                Sim sim(this);
                body(sim);
            });
            rec->go = true;
            rec->cv.notify_one();
        }
        {
            std::unique_lock<std::mutex> lk(mu_);  // mw-lint: allow(raw-sync-primitive) baton
            done_cv_.wait(lk, [this] { return finished_ == spawned_; });
        }
        for (auto& rec : threads_) {
            if (rec && rec->th.joinable()) rec->th.join();
        }
    }

    [[nodiscard]] bool failed() const { return failed_; }
    [[nodiscard]] const std::string& failure() const { return failure_; }
    [[nodiscard]] std::uint64_t steps() const { return steps_; }
    [[nodiscard]] std::string picks_string() const {
        std::ostringstream out;
        for (std::size_t i = 0; i < picks_.size(); ++i) {
            if (i > 0) out << ',';
            out << picks_[i];
        }
        return out.str();
    }

    // -- Sim surface (called from managed threads) --------------------------

    void spawn(std::function<void()> fn) {
        ThreadRec* self = t_self;
        MW_ASSERT_MSG(self != nullptr, "Sim::thread called off a managed thread");
        std::unique_lock<std::mutex> lk(mu_);  // mw-lint: allow(raw-sync-primitive) baton
        if (spawned_ >= kMaxThreads) {
            fail_locked(lk, "Sim::thread: thread cap exceeded (Options::kMaxThreads)");
        }
        ThreadRec* child = make_thread_locked(std::move(fn));
        // Spawn edge: the child begins with everything the parent did so far;
        // the parent's next event is NOT ordered before the child. join (not
        // assign) so the child keeps its own component's initial tick.
        child->clock.join(self->clock);
        self->clock.c[static_cast<std::size_t>(self->id)] += 1;
    }

    void join_all() {
        ThreadRec* self = t_self;
        MW_ASSERT_MSG(self != nullptr, "Sim::join_all called off a managed thread");
        std::unique_lock<std::mutex> lk(mu_);  // mw-lint: allow(raw-sync-primitive) baton
        while (!others_finished_locked(self)) {
            self->state = ThreadRec::State::kBlockedJoin;
            yield_locked(lk, self, Op::kYield, nullptr, "join_all");
        }
        // Join edges: the body resumes ordered after every child's last event.
        for (auto& rec : threads_) {
            if (rec && rec.get() != self) self->clock.join(rec->clock);
        }
    }

    // -- instrumentation hooks (called from managed threads) ----------------

    void schedule_point(Op op, const void* addr, const char* label) {
        ThreadRec* self = t_self;
        std::unique_lock<std::mutex> lk(mu_);  // mw-lint: allow(raw-sync-primitive) baton
        yield_locked(lk, self, op, addr, label);
    }

    void apply_atomic(const void* addr, Op op, Ordering order, bool did_store) {
        ThreadRec* self = t_self;
        std::unique_lock<std::mutex> lk(mu_);  // mw-lint: allow(raw-sync-primitive) baton
        AtomicState& atom = atomics_[addr];
        const bool acquire_side =
            order == Ordering::kAcquire || order == Ordering::kAcqRel;
        const bool release_side =
            order == Ordering::kRelease || order == Ordering::kAcqRel;
        if (acquire_side) self->clock.join(atom.release_clock);
        if (did_store) {
            if (release_side) {
                if (op == Op::kAtomicRmw) {
                    atom.release_clock.join(self->clock);  // extends the sequence
                } else {
                    atom.release_clock = self->clock;  // heads a new sequence
                }
                self->clock.c[static_cast<std::size_t>(self->id)] += 1;
            } else if (op == Op::kAtomicStore) {
                // A relaxed plain store breaks the release sequence: readers
                // of this value synchronize with nobody.
                atom.release_clock.clear();
            }
            // Relaxed RMW: continues the sequence, adds no edge of its own.
        }
    }

    void lock(const void* addr, bool shared, bool (*try_acquire)(void*),
              void* primitive, const char* label) {
        const Op op = shared ? Op::kSharedLock : Op::kMutexLock;
        for (;;) {
            schedule_point(op, addr, label);
            if (try_acquire(primitive)) break;
            ThreadRec* self = t_self;
            std::unique_lock<std::mutex> lk(mu_);  // mw-lint: allow(raw-sync-primitive) baton
            self->state = ThreadRec::State::kBlockedSync;
            self->wait_addr = addr;
            yield_locked(lk, self, op, addr, "blocked");
            self->wait_addr = nullptr;
        }
        ThreadRec* self = t_self;
        std::unique_lock<std::mutex> lk(mu_);  // mw-lint: allow(raw-sync-primitive) baton
        self->clock.join(mutexes_[addr].clock);
    }

    void unlock(const void* addr, bool shared) {
        ThreadRec* self = t_self;
        std::unique_lock<std::mutex> lk(mu_);  // mw-lint: allow(raw-sync-primitive) baton
        log_event_locked(self->id, shared ? Op::kSharedUnlock : Op::kMutexUnlock,
                         addr, nullptr);
        MutexClock& mtx = mutexes_[addr];
        mtx.clock.join(self->clock);
        self->clock.c[static_cast<std::size_t>(self->id)] += 1;
        // The real unlock runs right after we return, before this thread can
        // yield again — so waiters retry only once the primitive is free.
        for (auto& rec : threads_) {
            if (rec && rec->state == ThreadRec::State::kBlockedSync &&
                rec->wait_addr == addr) {
                rec->state = ThreadRec::State::kRunnable;
            }
        }
    }

    void race_access(const void* addr, bool is_write, const char* label) {
        ThreadRec* self = t_self;
        std::unique_lock<std::mutex> lk(mu_);  // mw-lint: allow(raw-sync-primitive) baton
        log_event_locked(self->id, is_write ? Op::kRaceWrite : Op::kRaceRead, addr,
                         label);
        DataState& data = races_[addr];
        const auto sid = static_cast<std::size_t>(self->id);
        const auto ordered_before_self = [&](int tid, std::uint64_t epoch) {
            return epoch <= self->clock.c[static_cast<std::size_t>(tid)];
        };
        if (data.last_writer >= 0 && data.last_writer != self->id &&
            !ordered_before_self(data.last_writer, data.write_epoch)) {
            fail_locked(lk, race_message(is_write ? "write" : "read", label, "write",
                                         data.write_label, data.last_writer, addr));
        }
        if (is_write) {
            for (std::size_t t = 0; t < kMaxThreads; ++t) {
                if (t == sid || data.read_epochs[t] == 0) continue;
                if (!ordered_before_self(static_cast<int>(t), data.read_epochs[t])) {
                    fail_locked(lk, race_message("write", label, "read",
                                                 data.read_labels[t],
                                                 static_cast<int>(t), addr));
                }
            }
            data.last_writer = self->id;
            data.write_epoch = self->clock.c[sid];
            data.write_label = label;
            data.read_epochs.fill(0);
        } else {
            data.read_epochs[sid] = self->clock.c[sid];
            data.read_labels[sid] = label;
        }
    }

    void fail(const std::string& reason) {
        std::unique_lock<std::mutex> lk(mu_);  // mw-lint: allow(raw-sync-primitive) baton
        fail_locked(lk, reason);
    }

    // Thread wrapper, public for the std::thread entry point.
    void thread_main(ThreadRec* rec) {
        t_self = rec;
        {
            std::unique_lock<std::mutex> lk(mu_);  // mw-lint: allow(raw-sync-primitive) baton
            rec->cv.wait(lk, [&] { return rec->go || aborting_; });
        }
        if (!aborting_) {
            try {
                rec->fn();
            } catch (const AbortSchedule&) {
                // failure already recorded; unwound cleanly
            } catch (const std::exception& e) {
                fail(std::string("unhandled exception in managed thread: ") + e.what());
            } catch (...) {
                fail("unhandled non-std exception in managed thread");
            }
        }
        t_self = nullptr;
        std::unique_lock<std::mutex> lk(mu_);  // mw-lint: allow(raw-sync-primitive) baton
        rec->state = ThreadRec::State::kFinished;
        finished_ += 1;
        // The body thread blocked in join_all becomes runnable once every
        // other thread has finished.
        for (auto& other : threads_) {
            if (other && other->state == ThreadRec::State::kBlockedJoin &&
                others_finished_locked(other.get())) {
                other->state = ThreadRec::State::kRunnable;
            }
        }
        if (finished_ == spawned_) {
            done_cv_.notify_all();
            return;
        }
        try {
            hand_off_locked(lk, rec, /*at_exit=*/true, Op::kYield, nullptr, "exit");
        } catch (const AbortSchedule&) {
            // Deadlock detected at thread exit (the remaining threads are all
            // blocked): the failure is recorded; they unwind on their own.
        }
    }

private:
    ThreadRec* make_thread_locked(std::function<void()> fn) {
        auto rec = std::make_unique<ThreadRec>();
        rec->id = static_cast<int>(spawned_);
        rec->exec = this;
        rec->fn = std::move(fn);
        // Own component starts at 1: epoch 0 must stay reserved for "never
        // seen", otherwise a thread that performs no release has epoch 0 and
        // its accesses look ordered-before everyone (0 <= anything).
        rec->clock.c[static_cast<std::size_t>(rec->id)] = 1;
        ThreadRec* raw = rec.get();
        threads_.push_back(std::move(rec));
        spawned_ += 1;
        raw->th = std::thread(  // mw-lint: allow(naked-thread) checker-owned, joined in run()
            [this, raw] { thread_main(raw); });
        return raw;
    }

    [[nodiscard]] bool others_finished_locked(const ThreadRec* self) const {
        for (const auto& rec : threads_) {
            if (rec && rec.get() != self &&
                rec->state != ThreadRec::State::kFinished) {
                return false;
            }
        }
        return true;
    }

    void log_event_locked(int tid, Op op, const void* addr, const char* label) {
        if (events_.size() < kEventTail) {
            events_.push_back({tid, op, addr, label});
        } else {
            events_[event_next_ % kEventTail] = {tid, op, addr, label};
        }
        event_next_ += 1;
    }

    [[nodiscard]] std::string race_message(const char* this_kind, const char* this_label,
                                           const char* prior_kind,
                                           const char* prior_label, int prior_tid,
                                           const void* addr) const {
        std::ostringstream out;
        out << "data race on " << addr << ": " << this_kind << " of `"
            << (this_label ? this_label : "?") << "` by T" << t_self->id
            << " is unordered with " << prior_kind << " of `"
            << (prior_label ? prior_label : "?") << "` by T" << prior_tid
            << " (no release/acquire or lock edge between them)";
        return out.str();
    }

    /// Record the failure (first wins), wake everyone, and abort the
    /// calling thread's schedule. `lk` must hold mu_.
    [[noreturn]] void fail_locked(std::unique_lock<std::mutex>& lk,  // mw-lint: allow(raw-sync-primitive) baton
                                  const std::string& reason) {
        if (!failed_) {
            failed_ = true;
            std::ostringstream out;
            out << reason << "\n  schedule so far:";
            std::ostringstream picks;
            for (std::size_t i = 0; i < picks_.size(); ++i) {
                if (i > 0) picks << ',';
                picks << picks_[i];
            }
            out << ' ' << picks.str() << "\n  recent events (oldest first):";
            const std::size_t count = events_.size();
            for (std::size_t i = 0; i < count; ++i) {
                const Event& e =
                    events_[(event_next_ >= kEventTail ? event_next_ + i : i) % count];
                out << "\n    T" << e.tid << ' ' << op_name(e.op);
                if (e.addr != nullptr) out << " @" << e.addr;
                if (e.label != nullptr) out << " (" << e.label << ")";
            }
            failure_ = out.str();
        }
        aborting_ = true;
        for (auto& rec : threads_) {
            if (rec) rec->cv.notify_all();
        }
        lk.unlock();
        throw AbortSchedule{};
    }

    /// The scheduling point: record the event, pick the next thread per the
    /// exploration strategy, hand the baton over, and (unless at_exit) wait
    /// until this thread is picked again.
    void yield_locked(std::unique_lock<std::mutex>& lk,  // mw-lint: allow(raw-sync-primitive) baton
                      ThreadRec* self, Op op, const void* addr, const char* label) {
        hand_off_locked(lk, self, /*at_exit=*/false, op, addr, label);
        self->cv.wait(lk, [&] { return self->go || aborting_; });
        if (aborting_) {
            lk.unlock();
            throw AbortSchedule{};
        }
    }

    void hand_off_locked(std::unique_lock<std::mutex>& lk,  // mw-lint: allow(raw-sync-primitive) baton
                         ThreadRec* self, bool at_exit, Op op, const void* addr,
                         const char* label) {
        if (aborting_) {
            if (at_exit) return;
            lk.unlock();
            throw AbortSchedule{};
        }
        log_event_locked(self->id, op, addr, label);
        steps_ += 1;
        if (steps_ > options_.max_steps) {
            fail_locked(lk, "step budget exceeded (" +
                                std::to_string(options_.max_steps) +
                                " scheduling points) — livelock or unpublished "
                                "exit condition?");
        }
        // Runnable set, current thread first when it may keep running.
        std::vector<int> runnable;
        const bool self_runnable =
            !at_exit && self->state == ThreadRec::State::kRunnable;
        if (self_runnable) runnable.push_back(self->id);
        for (const auto& rec : threads_) {
            if (rec && rec.get() != self &&
                rec->state == ThreadRec::State::kRunnable) {
                runnable.push_back(rec->id);
            }
        }
        if (runnable.empty()) {
            std::ostringstream out;
            out << "deadlock: no runnable thread;";
            for (const auto& rec : threads_) {
                if (!rec || rec->state == ThreadRec::State::kFinished) continue;
                out << " T" << rec->id
                    << (rec->state == ThreadRec::State::kBlockedJoin
                            ? " blocked in join_all"
                            : " blocked on a lock");
            }
            fail_locked(lk, out.str());
        }
        const int pick = pick_locked(lk, runnable, self_runnable);
        picks_.push_back(pick);
        if (self_runnable && pick != self->id) preemptions_ += 1;
        if (pick == self->id) return;  // keep running (only when self_runnable)
        ThreadRec* next = nullptr;
        for (const auto& rec : threads_) {
            if (rec && rec->id == pick) next = rec.get();
        }
        self->go = false;
        next->go = true;
        next->cv.notify_one();
    }

    int pick_locked(std::unique_lock<std::mutex>& lk,  // mw-lint: allow(raw-sync-primitive) baton
                    const std::vector<int>& runnable, bool current_first) {
        const std::size_t k = cursor_;
        cursor_ += 1;
        if (!explore_.replay_picks.empty()) {
            if (k < explore_.replay_picks.size()) {
                const int forced = explore_.replay_picks[k];
                for (int id : runnable) {
                    if (id == forced) return forced;
                }
                fail_locked(lk, "replay trace diverged: pick " + std::to_string(forced) +
                                    " not runnable at step " + std::to_string(k) +
                                    " (non-deterministic body?)");
            }
            return runnable.front();
        }
        if (explore_.use_rng) {
            return runnable[rng_() % runnable.size()];
        }
        // Exhaustive DFS over the persistent frame prefix.
        std::vector<Frame>& frames = explore_.frames;
        if (k < frames.size()) {
            Frame& f = frames[k];
            if (f.choices != runnable || f.current_first != current_first) {
                fail_locked(lk,
                            "exploration diverged: the runnable set changed between "
                            "runs of the same prefix — the test body must be "
                            "deterministic apart from scheduling");
            }
            return f.choices[f.index];
        }
        Frame f;
        f.choices = runnable;
        f.index = 0;
        f.preemptions_before = preemptions_;
        f.current_first = current_first;
        frames.push_back(std::move(f));
        return runnable.front();
    }

    const Options& options_;
    ExploreState& explore_;
    std::mt19937_64 rng_;

    std::mutex mu_;  // mw-lint: allow(raw-sync-primitive) the serialization baton itself
    std::condition_variable done_cv_;  // mw-lint: allow(raw-sync-primitive) run() completion
    std::vector<std::unique_ptr<ThreadRec>> threads_;
    std::size_t spawned_ = 0;
    std::size_t finished_ = 0;
    bool aborting_ = false;
    bool failed_ = false;
    std::string failure_;

    std::uint64_t steps_ = 0;
    std::size_t cursor_ = 0;
    int preemptions_ = 0;
    std::vector<int> picks_;
    std::vector<Event> events_;
    std::size_t event_next_ = 0;

    std::map<const void*, AtomicState> atomics_;
    std::map<const void*, DataState> races_;
    std::map<const void*, MutexClock> mutexes_;
};

/// Parse "0,1,1,0" into pick ids; returns false on malformed input.
bool parse_trace(const std::string& text, std::vector<int>* out) {
    out->clear();
    if (text.empty()) return true;
    std::istringstream in(text);
    std::string item;
    while (std::getline(in, item, ',')) {
        try {
            out->push_back(std::stoi(item));
        } catch (...) {
            return false;
        }
    }
    return true;
}

/// Advance the DFS prefix to the next unexplored schedule; false when the
/// bounded tree is exhausted.
bool advance_frames(std::vector<Frame>& frames, int preemption_bound) {
    while (!frames.empty()) {
        Frame& f = frames.back();
        std::size_t next = f.index + 1;
        // Every alternative beyond index 0 of a current-first frame costs one
        // preemption; skip them all once the budget along this prefix is spent.
        if (f.current_first && f.preemptions_before >= preemption_bound) {
            next = f.choices.size();
        }
        if (next < f.choices.size()) {
            f.index = next;
            return true;
        }
        frames.pop_back();
    }
    return false;
}

bool managed() noexcept { return t_self != nullptr; }

/// A schedule aborts by throwing AbortSchedule through the body's frames, so
/// destructors of RAII protocol guards (e.g. EpochCell::ReadGuard, whose
/// release is an instrumented fetch_sub) run while that exception is in
/// flight. A schedule point taken then would throw a second AbortSchedule
/// mid-unwind and terminate the process — skip instrumentation on unwind
/// paths instead. The real operation still executes; only the yield, clock
/// bookkeeping, and race check are skipped, and the schedule is already
/// being torn down (or, for a body's own exception, about to be failed by
/// the thread wrapper), so no coverage is lost.
bool unwinding() noexcept { return std::uncaught_exceptions() > 0; }

void atomic_point(const void* addr, Op op, Ordering /*order*/,
                  const char* label) {
    if (t_self == nullptr || unwinding()) return;
    t_self->exec->schedule_point(op, addr, label);
}

void atomic_applied(const void* addr, Op op, Ordering order, bool did_store) {
    if (t_self == nullptr || unwinding()) return;
    t_self->exec->apply_atomic(addr, op, order, did_store);
}

void mutex_lock(const void* addr, bool shared, bool (*try_acquire)(void*),
                void* primitive, const char* label) {
    if (t_self == nullptr) return;
    t_self->exec->lock(addr, shared, try_acquire, primitive, label);
}

void mutex_unlock(const void* addr, bool shared) {
    if (t_self == nullptr) return;
    t_self->exec->unlock(addr, shared);
}

void yield_point(const char* label) {
    if (t_self == nullptr || unwinding()) return;
    t_self->exec->schedule_point(Op::kYield, nullptr, label);
}

void race_read(const void* addr, const char* label) {
    if (t_self == nullptr || unwinding()) return;
    t_self->exec->race_access(addr, /*is_write=*/false, label);
}

void race_write(const void* addr, const char* label) {
    if (t_self == nullptr || unwinding()) return;
    t_self->exec->race_access(addr, /*is_write=*/true, label);
}

void check_failed(const char* file, int line, const char* expr, const char* msg) {
    if (t_self != nullptr) {
        std::ostringstream out;
        out << "assertion failed at " << file << ':' << line << ": `" << expr
            << "` — " << msg;
        t_self->exec->fail(out.str());  // throws AbortSchedule
        return;
    }
    ::mw::detail::assert_fail(expr, file, line, msg);
}

void Sim::thread(std::function<void()> fn) { exec_->spawn(std::move(fn)); }

void Sim::join_all() { exec_->join_all(); }

Result check(const Options& options, const std::function<void(Sim&)>& body) {
    MW_ASSERT_MSG(g_active == nullptr, "mc::check is not reentrant");
    Result result;
    ExploreState explore;

    const auto run_one = [&](std::uint64_t effective_seed) -> bool {
        Execution exec(options, explore);
        g_active = &exec;
        exec.run(body);
        g_active = nullptr;
        result.schedules += 1;
        if (exec.steps() > result.max_steps_seen) result.max_steps_seen = exec.steps();
        if (exec.failed()) {
            result.failed = true;
            result.message = exec.failure();
            result.failing_trace = exec.picks_string();
            result.failing_seed = effective_seed;
            return false;
        }
        return true;
    };

    switch (options.strategy) {
        case Strategy::kExhaustive: {
            for (std::uint64_t i = 0; i < options.max_schedules; ++i) {
                if (!run_one(0)) return result;
                if (!advance_frames(explore.frames, options.preemption_bound)) {
                    result.exhausted = true;
                    return result;
                }
            }
            return result;  // hit the safety valve; exhausted stays false
        }
        case Strategy::kRandom: {
            explore.use_rng = true;
            for (std::uint64_t i = 0; i < options.max_schedules; ++i) {
                explore.rng_seed = options.seed + i;
                if (!run_one(explore.rng_seed)) return result;
            }
            return result;
        }
        case Strategy::kReplay: {
            if (!options.replay_trace.empty()) {
                MW_ASSERT_MSG(parse_trace(options.replay_trace, &explore.replay_picks),
                              "mc::Options::replay_trace is malformed");
            } else {
                explore.use_rng = true;
                explore.rng_seed = options.replay_seed;
            }
            run_one(explore.use_rng ? explore.rng_seed : 0);
            return result;
        }
    }
    return result;
}

Result replay(const Options& base, const Result& failure,
              const std::function<void(Sim&)>& body) {
    Options options = base;
    options.strategy = Strategy::kReplay;
    options.replay_trace = failure.failing_trace;
    options.replay_seed = failure.failing_seed;
    return check(options, body);
}

}  // namespace mw::mc
