// mw::mc — a deterministic, schedule-exploring concurrency model checker in
// the spirit of loom/relacy, sized for the handful of lock-free protocols in
// this repo (the obs span ring, the breaker half-open gate, the server
// lifecycle flags, the SPSC ring that seeds the lock-free hot path).
//
// How it works (see DESIGN.md §12 for the full story):
//
//  * Under -DMW_MODEL_CHECK, every mw::Atomic / mw::Mutex operation is a
//    *scheduling point*: the running thread hands control to the checker,
//    which picks which managed thread runs next. Exactly one managed thread
//    runs at a time, so an execution is a total order of operations — a
//    schedule — and is a pure function of the sequence of picks.
//  * Exhaustive mode enumerates schedules by DFS over the pick tree with a
//    preemption bound (switching away from a still-runnable thread costs
//    one preemption; CHESS-style, most bugs need <= 2). Small protocols
//    fully exhaust; Result::exhausted says so.
//  * Random mode samples seeded schedules for state spaces too big to
//    exhaust. Every schedule's pick sequence is recorded, so any failure —
//    assertion, race, deadlock, step-budget livelock — replays
//    deterministically from its printed seed (random) or trace (either).
//  * Weak memory is NOT simulated: the serialized run always reads the
//    latest value. Instead, a vector-clock happens-before tracker flags
//    missing synchronization: acquire/release (and mutex) edges build the
//    clocks, relaxed operations do not, and a pair of MW_MC_RACE_READ/WRITE
//    accesses without an edge is reported as a data race — the same class
//    of bug a weakened memory order would expose on real hardware.
//
// Typical use (see tests/test_mc.cpp):
//
//   mc::Options options;
//   options.strategy = mc::Strategy::kExhaustive;
//   mc::Result r = mc::check(options, [](mc::Sim& sim) {
//       auto q = std::make_shared<SpscRing<int>>(4);
//       sim.thread([q] { while (!q->try_push(7)) {} });
//       sim.thread([q] { int v; while (!q->try_pop(v)) {} MC_ASSERT(v == 7); });
//       sim.join_all();
//   });
//   ASSERT_FALSE(r.failed) << r.message;
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "mc/hooks.hpp"

namespace mw::mc {

enum class Strategy : int {
    kExhaustive,  ///< DFS over the pick tree, bounded by `preemption_bound`
    kRandom,      ///< `max_schedules` seeded samples from `seed`
    kReplay,      ///< exactly one schedule: `replay_trace` or `replay_seed`
};

struct Options {
    Strategy strategy = Strategy::kExhaustive;

    /// Exhaustive: max context switches away from a runnable thread per
    /// schedule (CHESS-style preemption bounding).
    int preemption_bound = 3;

    /// Exhaustive: safety valve — stop (exhausted=false) after this many
    /// schedules. Random: exactly this many samples.
    std::uint64_t max_schedules = 200000;

    /// Random: base seed; sample i runs with effective seed `seed + i`.
    /// A failure reports the *effective* seed, replayable directly.
    std::uint64_t seed = 1;

    /// Per-schedule step budget: a schedule that exceeds it fails as a
    /// livelock (e.g. a spin loop whose exit flag is never published).
    std::uint64_t max_steps = 50000;

    /// Replay: the comma-separated pick sequence printed in a failure
    /// (takes precedence over replay_seed when non-empty).
    std::string replay_trace;
    /// Replay: re-run the single random sample with this effective seed.
    std::uint64_t replay_seed = 0;

    /// Managed threads per execution, including the body thread (fixed cap
    /// keeps the vector clocks flat).
    static constexpr std::size_t kMaxThreads = 8;
};

struct Result {
    bool failed = false;
    /// Exhaustive only: the pick tree was fully explored within the bounds.
    bool exhausted = false;
    std::uint64_t schedules = 0;   ///< schedules actually run
    std::uint64_t max_steps_seen = 0;

    // Failure details (valid when failed):
    std::string message;        ///< what + where + recent-event tail
    std::uint64_t failing_seed = 0;  ///< random mode: effective seed
    std::string failing_trace;  ///< pick sequence, feed to replay_trace
};

/// Handle the body closure uses to spawn managed threads. Only valid inside
/// the closure for the duration of one schedule.
class Sim {
public:
    /// Spawn a managed thread running `fn`. Spawn is a scheduling point and
    /// a happens-before edge parent -> child.
    void thread(std::function<void()> fn);

    /// Block the body thread until every spawned thread finished (join
    /// happens-before edges child -> body). Call before final assertions.
    void join_all();

private:
    friend class Execution;
    explicit Sim(class Execution* exec) : exec_(exec) {}
    class Execution* exec_;
};

/// Explore schedules of `body` per `options`. The body runs once per
/// schedule on a managed thread and must be deterministic apart from the
/// scheduling itself (fresh state each run, no wall clock, no external
/// randomness). Not reentrant; one check() at a time per process.
[[nodiscard]] Result check(const Options& options,
                           const std::function<void(Sim&)>& body);

/// Convenience: replay one failing schedule of `body` from a Result.
[[nodiscard]] Result replay(const Options& base, const Result& failure,
                            const std::function<void(Sim&)>& body);

}  // namespace mw::mc
