// The model zoo: the five benchmark models of §III-B and the sixteen
// augmentation architectures of §V-B that the paper adds to cover the
// FFNN/CNN parameter space (depth, layer sizes, VGG blocks, convolutions per
// block, filter size, pooling size) when training the scheduler.
#pragma once

#include <vector>

#include "nn/model.hpp"

namespace mw::nn::zoo {

/// §III-B.1: Iris classifier, two hidden layers of six nodes (4 -> 6 -> 6 -> 3).
ModelSpec simple();

/// §III-B.2: MNIST FFNN, hidden layers 784 and 800 (784 -> 784 -> 800 -> 10).
ModelSpec mnist_small();

/// §III-B.3: deep MNIST FFNN, hidden 2500-2000-1500-1000-500.
ModelSpec mnist_deep();

/// §III-B.4: MNIST CNN, two VGG blocks of one 3x3x32 conv + 2x2 pool,
/// dense head 128 -> 10.
ModelSpec mnist_cnn();

/// §III-B.5: CIFAR-10 CNN, three VGG blocks of two 3x3x32 convs + 2x2 pool,
/// dense head 128 -> 10.
ModelSpec cifar10();

/// The five models above, in paper order.
std::vector<ModelSpec> paper_models();

/// The sixteen additional architectures used for data augmentation (§V-B):
/// eight FFNNs sweeping depth and width, eight CNNs sweeping VGG blocks,
/// convolutions per block, filter size and pooling size.
std::vector<ModelSpec> augmentation_models();

/// paper_models() + augmentation_models() (21 architectures).
std::vector<ModelSpec> all_models();

/// Find a spec by name across all_models(); throws mw::InvalidArgument.
ModelSpec by_name(const std::string& name);

}  // namespace mw::nn::zoo
