#include "common/csv.hpp"

#include <sstream>

#include "common/error.hpp"

namespace mw {
namespace {

bool needs_quoting(std::string_view cell) {
    return cell.find_first_of(",\"\n") != std::string_view::npos;
}

}  // namespace

CsvWriter::CsvWriter(const std::string& path) : path_(path), out_(path, std::ios::trunc) {
    if (!out_) throw IoError("cannot open CSV for writing: " + path);
}

void CsvWriter::write_cell(std::string_view cell, bool first) {
    if (!first) out_ << ',';
    if (needs_quoting(cell)) {
        out_ << '"';
        for (const char c : cell) {
            if (c == '"') out_ << '"';
            out_ << c;
        }
        out_ << '"';
    } else {
        out_ << cell;
    }
}

void CsvWriter::row(std::initializer_list<std::string_view> cells) {
    bool first = true;
    for (const auto cell : cells) {
        write_cell(cell, first);
        first = false;
    }
    out_ << '\n';
    if (!out_) throw IoError("write failed: " + path_);
}

void CsvWriter::row(const std::vector<std::string>& cells) {
    bool first = true;
    for (const auto& cell : cells) {
        write_cell(cell, first);
        first = false;
    }
    out_ << '\n';
    if (!out_) throw IoError("write failed: " + path_);
}

std::vector<std::vector<std::string>> read_csv(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw IoError("cannot open CSV for reading: " + path);
    std::vector<std::vector<std::string>> rows;
    std::string line;
    while (std::getline(in, line)) {
        std::vector<std::string> cells;
        std::string cell;
        bool quoted = false;
        for (std::size_t i = 0; i < line.size(); ++i) {
            const char c = line[i];
            if (quoted) {
                if (c == '"') {
                    if (i + 1 < line.size() && line[i + 1] == '"') {
                        cell += '"';
                        ++i;
                    } else {
                        quoted = false;
                    }
                } else {
                    cell += c;
                }
            } else if (c == '"') {
                quoted = true;
            } else if (c == ',') {
                cells.push_back(std::move(cell));
                cell.clear();
            } else {
                cell += c;
            }
        }
        cells.push_back(std::move(cell));
        rows.push_back(std::move(cells));
    }
    return rows;
}

}  // namespace mw
