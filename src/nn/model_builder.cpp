#include "nn/model_builder.hpp"

#include "common/error.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/flatten.hpp"
#include "nn/pooling.hpp"
#include "nn/weights.hpp"

namespace mw::nn {
namespace {

std::vector<LayerPtr> build_ffnn(const FfnnSpec& spec, bool softmax_output) {
    MW_CHECK(spec.input_dim > 0 && spec.output_dim > 0, "FFNN dims must be positive");
    std::vector<LayerPtr> layers;
    std::size_t prev = spec.input_dim;
    for (const std::size_t nodes : spec.hidden) {
        layers.push_back(std::make_unique<Dense>(prev, nodes, spec.hidden_act));
        prev = nodes;
    }
    layers.push_back(std::make_unique<Dense>(
        prev, spec.output_dim,
        softmax_output ? Activation::kSoftmax : Activation::kIdentity));
    return layers;
}

std::vector<LayerPtr> build_cnn(const CnnSpec& spec, bool softmax_output) {
    MW_CHECK(spec.in_h > 0 && spec.in_w > 0 && spec.in_channels > 0, "CNN input dims");
    MW_CHECK(!spec.blocks.empty(), "CNN needs at least one VGG block");
    std::vector<LayerPtr> layers;
    std::size_t ch = spec.in_channels;
    std::size_t h = spec.in_h;
    std::size_t w = spec.in_w;
    for (const auto& block : spec.blocks) {
        for (std::size_t i = 0; i < block.convs; ++i) {
            layers.push_back(
                std::make_unique<Conv2d>(ch, block.filters, block.filter_size, spec.hidden_act));
            ch = block.filters;
        }
        MW_CHECK(h % block.pool_size == 0 && w % block.pool_size == 0,
                 "CNN spatial extent not divisible by pool size");
        layers.push_back(std::make_unique<MaxPool>(block.pool_size));
        h /= block.pool_size;
        w /= block.pool_size;
    }
    layers.push_back(std::make_unique<Flatten>());
    std::size_t prev = ch * h * w;
    for (const std::size_t nodes : spec.dense_hidden) {
        layers.push_back(std::make_unique<Dense>(prev, nodes, spec.hidden_act));
        prev = nodes;
    }
    layers.push_back(std::make_unique<Dense>(
        prev, spec.output_dim,
        softmax_output ? Activation::kSoftmax : Activation::kIdentity));
    return layers;
}

}  // namespace

Model build_model(ModelSpec spec) {
    std::vector<LayerPtr> layers = spec.is_cnn() ? build_cnn(spec.cnn(), spec.softmax_output)
                                                 : build_ffnn(spec.ffnn(), spec.softmax_output);
    return Model(std::move(spec), std::move(layers));
}

Model build_model(ModelSpec spec, std::uint64_t weight_seed) {
    Model model = build_model(std::move(spec));
    Rng rng(weight_seed);
    initialise_weights(model, rng);
    return model;
}

}  // namespace mw::nn
