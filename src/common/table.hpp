// ASCII table rendering: benches print paper-style tables with this.
#pragma once

#include <string>
#include <vector>

namespace mw {

/// Accumulates rows of string cells and renders an aligned ASCII table.
class TextTable {
public:
    /// Set the header row (also fixes the column count).
    void header(std::vector<std::string> cells);

    /// Append a data row; must match the header width if one was set.
    void row(std::vector<std::string> cells);

    /// Render with column alignment, `| ` separators and a rule under the
    /// header.
    [[nodiscard]] std::string str() const;

    /// Render directly to stdout.
    void print() const;

    [[nodiscard]] std::size_t rows() const { return rows_.size(); }

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace mw
