// mw-analyze: program loading, lock-graph construction, and the four
// whole-program checks (lock-order, blocking-under-lock, atomic discipline,
// clock confinement).
#pragma once

#include <string>
#include <vector>

#include "model.hpp"

namespace mwa {

struct EdgeInfo {
    std::string from;   // held rank
    std::string to;     // acquired rank
    std::string chain;  // witness acquisition chain (human-readable)
};

struct AnalysisResult {
    std::vector<Finding> findings;  // sorted by (file, line, check)
    std::size_t suppressed = 0;     // findings silenced by mw-analyze: allow(...)
    std::size_t edges = 0;          // distinct held-while-acquiring rank edges
    std::vector<EdgeInfo> edge_list;  // one witness per distinct (from, to)
};

/// Lex + scan every C++ source under `root` (preferring `root/src` when it
/// exists). Paths in the Program are root-relative with '/' separators.
/// Returns an empty program and sets *error on I/O failure.
Program load_program(const std::string& root, const AnalyzerConfig& cfg, std::string* error);

/// Run every check. Resolves guard ranks in place (hence non-const Program).
AnalysisResult analyze(Program& prog, const AnalyzerConfig& cfg);

/// Machine-readable findings + summary (one JSON object).
std::string to_json(const Program& prog, const AnalysisResult& res);

}  // namespace mwa
