// Property-style parameterized suites (TEST_P): invariants that must hold
// for EVERY zoo architecture, every device, every activation, every policy
// and every seed — not just the hand-picked cases of the unit tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/stats.hpp"
#include "device/exec_model.hpp"
#include "device/registry.hpp"
#include "nn/activation.hpp"
#include "nn/model_builder.hpp"
#include "nn/zoo.hpp"
#include "obs/metrics.hpp"
#include "sched/features.hpp"
#include "sched/measurement_harness.hpp"

namespace {

using namespace mw;

// ---------------------------------------------------------------------------
// Every zoo architecture: structural and numerical invariants.
// ---------------------------------------------------------------------------

class ZooModelProperty : public ::testing::TestWithParam<std::string> {};

TEST_P(ZooModelProperty, ForwardIsDeterministic) {
    const nn::Model model = nn::build_model(nn::zoo::by_name(GetParam()), 7);
    Rng rng(1);
    Tensor x(model.input_shape(2));
    x.fill_uniform(rng, 0.0F, 1.0F);
    const Tensor a = model.forward(x);
    const Tensor b = model.forward(x);
    EXPECT_EQ(a.max_abs_diff(b), 0.0F);
}

TEST_P(ZooModelProperty, OutputsAreProbabilities) {
    const nn::Model model = nn::build_model(nn::zoo::by_name(GetParam()), 7);
    Rng rng(2);
    Tensor x(model.input_shape(3));
    x.fill_uniform(rng, 0.0F, 1.0F);
    const Tensor out = model.forward(x);
    for (std::size_t r = 0; r < out.shape()[0]; ++r) {
        float sum = 0.0F;
        for (std::size_t c = 0; c < out.shape()[1]; ++c) {
            EXPECT_GE(out.at(r, c), 0.0F);
            EXPECT_LE(out.at(r, c), 1.0F);
            sum += out.at(r, c);
        }
        EXPECT_NEAR(sum, 1.0F, 1e-4F);
    }
}

TEST_P(ZooModelProperty, CostScalesLinearlyWithBatch) {
    const nn::Model model = nn::build_model(nn::zoo::by_name(GetParam()), 7);
    const auto c1 = model.cost(1);
    const auto c16 = model.cost(16);
    EXPECT_GT(c1.total.flops, 0.0);
    EXPECT_NEAR(c16.total.flops, 16.0 * c1.total.flops, 1e-6 * c16.total.flops);
    EXPECT_NEAR(c16.total.work_items, 16.0 * c1.total.work_items,
                1e-6 * c16.total.work_items);
    // Weight bytes do not scale with batch.
    EXPECT_EQ(c16.total.bytes_weights, c1.total.bytes_weights);
}

TEST_P(ZooModelProperty, DescMatchesSpecFamily) {
    const nn::ModelSpec spec = nn::zoo::by_name(GetParam());
    const nn::Model model = nn::build_model(spec, 7);
    EXPECT_EQ(model.desc().is_cnn, spec.is_cnn());
    EXPECT_GT(model.desc().total_neurons, 0U);
    EXPECT_GT(model.desc().depth, 0U);
    if (!spec.is_cnn()) {
        EXPECT_EQ(model.desc().vgg_blocks, 0U);
        EXPECT_EQ(model.desc().depth, spec.ffnn().hidden.size() + 1);
    } else {
        EXPECT_EQ(model.desc().vgg_blocks, spec.cnn().blocks.size());
    }
}

TEST_P(ZooModelProperty, FeatureExtractionIsFinite) {
    const nn::Model model = nn::build_model(nn::zoo::by_name(GetParam()), 7);
    for (const auto policy :
         {sched::Policy::kMaxThroughput, sched::Policy::kMinLatency,
          sched::Policy::kMinEnergy}) {
        const auto f = sched::extract_features(policy, model.desc(), 1024, true);
        for (const double v : f) {
            EXPECT_TRUE(std::isfinite(v));
            EXPECT_GE(v, 0.0);
        }
    }
}

std::vector<std::string> zoo_names() {
    std::vector<std::string> names;
    for (const auto& spec : nn::zoo::all_models()) names.push_back(spec.name);
    return names;
}

INSTANTIATE_TEST_SUITE_P(AllArchitectures, ZooModelProperty,
                         ::testing::ValuesIn(zoo_names()),
                         [](const auto& info) {
                             std::string name = info.param;
                             for (auto& c : name) {
                                 if (c == '-') c = '_';
                             }
                             return name;
                         });

// ---------------------------------------------------------------------------
// Every device x representative models: execution-model invariants.
// ---------------------------------------------------------------------------

struct DeviceCase {
    const char* device;
    const char* model;
};

class DeviceModelProperty : public ::testing::TestWithParam<DeviceCase> {
protected:
    DeviceModelProperty() : registry_(device::DeviceRegistry::standard_testbed()) {
        registry_.load_model_everywhere(
            std::make_shared<nn::Model>(nn::build_model(nn::zoo::by_name(GetParam().model), 7)));
    }
    device::DeviceRegistry registry_;
};

TEST_P(DeviceModelProperty, ThroughputNonDecreasingInBatch) {
    sched::MeasurementHarness harness(registry_);
    double prev = 0.0;
    for (std::size_t batch = 2; batch <= (64U << 10); batch *= 4) {
        const auto m = harness.measure(GetParam().model, GetParam().device, batch,
                                       sched::GpuState::kWarm);
        EXPECT_GE(m.throughput_bps(), prev * 0.999) << batch;
        prev = m.throughput_bps();
    }
}

TEST_P(DeviceModelProperty, IdleStartNeverFasterOrCheaper) {
    sched::MeasurementHarness harness(registry_);
    for (const std::size_t batch : {8U, 1024U, 65536U}) {
        const auto warm =
            harness.measure(GetParam().model, GetParam().device, batch, sched::GpuState::kWarm);
        const auto idle =
            harness.measure(GetParam().model, GetParam().device, batch, sched::GpuState::kIdle);
        EXPECT_GE(idle.latency_s(), warm.latency_s() * 0.999) << batch;
        EXPECT_GE(idle.energy_j, warm.energy_j * 0.999) << batch;
    }
}

TEST_P(DeviceModelProperty, MeasurementsArePositiveAndConsistent) {
    sched::MeasurementHarness harness(registry_);
    const auto m =
        harness.measure(GetParam().model, GetParam().device, 256, sched::GpuState::kWarm);
    EXPECT_GT(m.latency_s(), 0.0);
    EXPECT_GT(m.energy_j, 0.0);
    EXPECT_GT(m.avg_power_w(), 0.0);
    EXPECT_NEAR(m.breakdown.total_s(), m.latency_s(), 1e-12);
    EXPECT_EQ(m.batch, 256U);
    EXPECT_EQ(m.device_name, GetParam().device);
}

TEST_P(DeviceModelProperty, ThrottleSlowsProportionally) {
    device::Device& dev = registry_.at(GetParam().device);
    dev.force_warm();
    const auto before = dev.profile(GetParam().model, 4096, 0.0);
    dev.set_throttle(4.0);
    dev.force_warm();
    const auto after = dev.profile(GetParam().model, 4096, before.end_time + 1000.0);
    EXPECT_GT(after.latency_s(), before.latency_s() * 1.5);
}

TEST_P(DeviceModelProperty, ProfileIsDeterministicWithoutNoise) {
    sched::MeasurementHarness harness(registry_);
    const auto a =
        harness.measure(GetParam().model, GetParam().device, 512, sched::GpuState::kWarm);
    const auto b =
        harness.measure(GetParam().model, GetParam().device, 512, sched::GpuState::kWarm);
    // end_time = start + duration is computed at different timeline
    // magnitudes, so equality holds only to float-cancellation precision.
    EXPECT_NEAR(a.latency_s(), b.latency_s(), a.latency_s() * 1e-6);
    EXPECT_NEAR(a.energy_j, b.energy_j, a.energy_j * 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DeviceModelProperty,
    ::testing::Values(DeviceCase{"i7-8700", "simple"}, DeviceCase{"i7-8700", "mnist-deep"},
                      DeviceCase{"uhd630", "mnist-small"}, DeviceCase{"uhd630", "cifar-10"},
                      DeviceCase{"gtx1080ti", "simple"}, DeviceCase{"gtx1080ti", "mnist-cnn"},
                      DeviceCase{"gtx1080ti", "mnist-deep"}),
    [](const auto& info) {
        std::string name = std::string(info.param.device) + "_" + info.param.model;
        for (auto& c : name) {
            if (c == '-') c = '_';
        }
        return name;
    });

// ---------------------------------------------------------------------------
// Activations: gradient identities checked by finite differences.
// ---------------------------------------------------------------------------

class ActivationProperty : public ::testing::TestWithParam<nn::Activation> {};

TEST_P(ActivationProperty, GradMatchesFiniteDifference) {
    const nn::Activation act = GetParam();
    for (const float x : {-2.0F, -0.5F, 0.25F, 1.5F}) {
        Tensor t(Shape{1});
        const float eps = 1e-3F;
        t.at(0) = x + eps;
        apply_activation(act, t);
        const float up = t.at(0);
        t.at(0) = x - eps;
        apply_activation(act, t);
        const float down = t.at(0);
        const float numeric = (up - down) / (2.0F * eps);

        t.at(0) = x;
        apply_activation(act, t);
        const float analytic = nn::activation_grad_from_output(act, t.at(0));
        // relu is non-differentiable at 0; the test points avoid it.
        EXPECT_NEAR(analytic, numeric, 5e-3F) << "x=" << x;
    }
}

TEST_P(ActivationProperty, NameRoundTrips) {
    EXPECT_EQ(nn::activation_from_name(nn::activation_name(GetParam())), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Pointwise, ActivationProperty,
                         ::testing::Values(nn::Activation::kIdentity, nn::Activation::kRelu,
                                           nn::Activation::kTanh, nn::Activation::kSigmoid),
                         [](const auto& info) { return nn::activation_name(info.param); });

// ---------------------------------------------------------------------------
// Work-group geometry: every device has an interior optimum.
// ---------------------------------------------------------------------------

class WorkGroupProperty
    : public ::testing::TestWithParam<device::DeviceParams> {};

TEST_P(WorkGroupProperty, EfficiencyBoundedAndHasInteriorOptimum) {
    const auto& params = GetParam();
    double best_eff = 0.0;
    std::size_t best_wg = 0;
    std::vector<std::size_t> sweep;
    for (std::size_t wg = 32; wg <= 16384; wg *= 2) sweep.push_back(wg);
    for (const std::size_t wg : sweep) {
        const double eff =
            device::work_group_efficiency(params, static_cast<double>(wg), 1 << 20);
        EXPECT_GT(eff, 0.0);
        EXPECT_LE(eff, 1.0);
        if (eff > best_eff) {
            best_eff = eff;
            best_wg = wg;
        }
    }
    // The optimum is interior: both extremes are strictly worse.
    EXPECT_NE(best_wg, sweep.front());
    EXPECT_NE(best_wg, sweep.back());
}

INSTANTIATE_TEST_SUITE_P(Presets, WorkGroupProperty,
                         ::testing::Values(device::i7_8700_params(), device::uhd630_params(),
                                           device::gtx1080ti_params()),
                         [](const auto& info) {
                             std::string name = info.param.name;
                             for (auto& c : name) {
                                 if (c == '-') c = '_';
                             }
                             return name;
                         });

// ---------------------------------------------------------------------------
// RNG: statistical sanity across seeds.
// ---------------------------------------------------------------------------

class RngProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngProperty, UniformMomentsAndBounds) {
    Rng rng(GetParam());
    OnlineStats stats;
    for (int i = 0; i < 20000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        stats.add(u);
    }
    EXPECT_NEAR(stats.mean(), 0.5, 0.02);
    EXPECT_NEAR(stats.stddev(), std::sqrt(1.0 / 12.0), 0.02);
}

TEST_P(RngProperty, BelowStaysInRange) {
    Rng rng(GetParam());
    for (int i = 0; i < 2000; ++i) {
        EXPECT_LT(rng.below(17), 17U);
        const auto v = rng.range(-5, 5);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngProperty,
                         ::testing::Values(0ULL, 1ULL, 42ULL, 0xdeadbeefULL,
                                           0xffffffffffffffffULL));

// ---------------------------------------------------------------------------
// Policies: best_device agrees with per-policy scores on random rows.
// ---------------------------------------------------------------------------

class PolicyProperty : public ::testing::TestWithParam<sched::Policy> {};

TEST_P(PolicyProperty, BestDeviceMaximisesScore) {
    Rng rng(9);
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<sched::SweepPoint> rows(3);
        const char* names[] = {"a", "b", "c"};
        for (std::size_t d = 0; d < 3; ++d) {
            rows[d].device_name = names[d];
            rows[d].throughput_bps = rng.uniform(1e6, 1e10);
            rows[d].latency_s = rng.uniform(1e-5, 10.0);
            rows[d].energy_j = rng.uniform(1e-3, 1e3);
        }
        const std::string best = sched::best_device(rows, GetParam());
        for (const auto& row : rows) {
            switch (GetParam()) {
                case sched::Policy::kMaxThroughput:
                    EXPECT_LE(row.throughput_bps,
                              rows[best[0] - 'a'].throughput_bps + 1e-9);
                    break;
                case sched::Policy::kMinLatency:
                    EXPECT_GE(row.latency_s, rows[best[0] - 'a'].latency_s - 1e-12);
                    break;
                case sched::Policy::kMinEnergy:
                    EXPECT_GE(row.energy_j, rows[best[0] - 'a'].energy_j - 1e-12);
                    break;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(All, PolicyProperty,
                         ::testing::Values(sched::Policy::kMaxThroughput,
                                           sched::Policy::kMinLatency,
                                           sched::Policy::kMinEnergy),
                         [](const auto& info) { return sched::policy_name(info.param); });

// ---------------------------------------------------------------------------
// obs::LogHistogram: percentile estimates vs the exact sample percentile,
// on randomized inputs.
// ---------------------------------------------------------------------------

class HistogramProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HistogramProperty, PercentileMonotoneAndWithinOneBucketOfExact) {
    Rng rng(GetParam());
    const std::size_t n = 200 + rng.below(800);
    obs::LogHistogram hist;
    std::vector<double> samples;
    samples.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        // Log-uniform over [10 us, 10 s], inside the histogram's range.
        const double v = std::pow(10.0, rng.uniform(-5.0, 1.0));
        samples.push_back(v);
        hist.add(v);
    }
    std::sort(samples.begin(), samples.end());

    // The estimate is the geometric midpoint of the bucket holding the
    // rank-th smallest sample, so it sits within half a log bucket of the
    // exact value; one full bucket width (x10^(1/20)) bounds it comfortably.
    const double bucket_factor = std::pow(10.0, 1.0 / 20.0);
    double prev = 0.0;
    for (double p = 1.0; p <= 100.0; p += 0.5) {
        const double est = hist.percentile(p);
        ASSERT_FALSE(std::isnan(est));
        EXPECT_GE(est, prev) << "percentile not monotone in p at p=" << p;
        prev = est;
        const auto rank = std::max<std::size_t>(
            1, static_cast<std::size_t>(
                   std::ceil(p / 100.0 * static_cast<double>(n))));
        const double exact = samples[std::min(rank, n) - 1];
        EXPECT_LE(est, exact * bucket_factor)
            << "p" << p << " overshoots exact " << exact;
        EXPECT_GE(est * bucket_factor, exact)
            << "p" << p << " undershoots exact " << exact;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistogramProperty,
                         ::testing::Values(11U, 23U, 47U, 81U, 99U));

}  // namespace
