// Workload generation: the arrival patterns the paper's scheduler must
// absorb — steady streams, Poisson traffic, data bursts, application
// overloads and diurnal load (§I, §V-A).
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "sched/scheduler.hpp"

namespace mw::workload {

/// One timed classification request.
struct TimedRequest {
    double arrival_s = 0.0;
    sched::ScheduleRequest request;
};

/// A generated request sequence, sorted by arrival time.
using Trace = std::vector<TimedRequest>;

/// Arrival process shapes.
enum class ArrivalPattern {
    kConstant,  ///< fixed inter-arrival gaps
    kPoisson,   ///< exponential inter-arrivals at a fixed rate
    kBursty,    ///< on/off: bursts of rapid arrivals separated by quiet gaps
    kDiurnal,   ///< sinusoidally modulated Poisson rate (day/night pattern)
};

std::string pattern_name(ArrivalPattern pattern);

/// Generator configuration.
struct GeneratorConfig {
    ArrivalPattern pattern = ArrivalPattern::kPoisson;
    double duration_s = 60.0;
    double mean_rate_hz = 10.0;       ///< long-run average arrival rate
    // bursty knobs
    double burst_rate_hz = 100.0;     ///< arrival rate inside a burst
    double burst_mean_len_s = 0.5;
    double gap_mean_len_s = 2.0;
    // diurnal knobs
    double diurnal_period_s = 60.0;   ///< one simulated "day"
    double diurnal_depth = 0.9;       ///< rate swing: mean * (1 +- depth)
    // request content
    std::vector<std::string> model_names;
    std::vector<std::size_t> batch_choices{8, 64, 512, 4096, 32768};
    sched::Policy policy = sched::Policy::kMaxThroughput;
    /// Bursts carry larger batches when true (data volume correlates with
    /// arrival intensity, as in streaming analytics).
    bool bursts_increase_batch = true;
    std::uint64_t seed = 1;
};

/// Generate a trace; arrival times are strictly increasing.
Trace generate_trace(const GeneratorConfig& config);

/// Instantaneous arrival rate of the configured process at time t (useful
/// for plotting/validating the diurnal shape).
double expected_rate_at(const GeneratorConfig& config, double t);

}  // namespace mw::workload
