# Empty dependencies file for mw_data.
# This may be replaced when dependencies are built.
