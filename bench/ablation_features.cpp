// Feature ablation: which inputs does the scheduler actually need?
// §V-B singles out the sample size and the GPU state as the two dominant
// features; this bench retrains the forest with individual feature groups
// knocked out (replaced by a constant) and reports the accuracy drop.
// It also sweeps the forest size and the measurement-noise level.
#include <cstdio>
#include <filesystem>

#include "common/csv.hpp"
#include "common/format.hpp"
#include "common/table.hpp"
#include "ml/cross_validation.hpp"
#include "ml/random_forest.hpp"
#include "nn/zoo.hpp"
#include "sched/features.hpp"
#include "sched/predictor.hpp"
#include "sched/scheduler_dataset.hpp"

using namespace mw;

namespace {

/// Copy of the dataset with the listed feature columns zeroed out.
ml::MlDataset knock_out(const ml::MlDataset& data, const std::vector<std::size_t>& cols) {
    ml::MlDataset out = data;
    for (std::size_t i = 0; i < out.size(); ++i) {
        for (const std::size_t c : cols) out.x[i * out.features + c] = 0.0;
    }
    return out;
}

double cv_accuracy(const ml::MlDataset& data, std::size_t trees, ThreadPool* pool) {
    ml::RandomForest proto({.n_estimators = trees, .max_depth = 10, .seed = 42});
    const auto folds = ml::stratified_kfold(data.y, data.classes, 5, 7);
    return ml::cross_validate(proto, data, folds, pool).accuracy;
}

}  // namespace

int main() {
    auto registry = device::DeviceRegistry::standard_testbed({.noise_sigma = 0.08});
    std::printf("Building the scheduler dataset...\n");
    const auto dataset =
        sched::build_scheduler_dataset(registry, nn::zoo::all_models(), {.repeats = 2});
    ThreadPool pool;

    std::filesystem::create_directories("bench_out");
    CsvWriter csv("bench_out/ablation_features.csv");
    csv.row({"ablation", "accuracy"});

    const double full = cv_accuracy(dataset.data, 60, &pool);

    // Feature indices (see sched::feature_names()):
    // 0 policy, 1 is_cnn, 2 depth, 3 neurons, 4..7 CNN structure,
    // 8 batch, 9 gpu_warm.
    struct Knockout {
        const char* label;
        std::vector<std::size_t> cols;
    };
    const Knockout knockouts[] = {
        {"full feature set", {}},
        {"- sample size", {8}},
        {"- GPU state", {9}},
        {"- policy", {0}},
        {"- architecture (all 7 structure features)", {1, 2, 3, 4, 5, 6, 7}},
        {"- CNN structure only", {4, 5, 6, 7}},
        {"only sample size + GPU state", {0, 1, 2, 3, 4, 5, 6, 7}},
    };

    TextTable table;
    table.header({"ablation", "accuracy", "vs full"});
    for (const auto& ko : knockouts) {
        const double acc = ko.cols.empty()
                               ? full
                               : cv_accuracy(knock_out(dataset.data, ko.cols), 60, &pool);
        table.row({ko.label, format("{:.2f}%", acc * 100.0),
                   format("{:+.2f}pp", (acc - full) * 100.0)});
        csv.row({ko.label, format("{}", acc)});
    }
    std::printf("\n=== Feature ablation (Random Forest, 5-fold stratified CV) ===\n");
    table.print();

    // Single policy-as-feature forest vs three per-policy specialists.
    {
        sched::DevicePredictor unified(
            std::make_unique<ml::RandomForest>(
                ml::ForestConfig{.n_estimators = 60, .max_depth = 10, .seed = 42}),
            dataset.device_names);
        const ml::RandomForest proto(
            ml::ForestConfig{.n_estimators = 60, .max_depth = 10, .seed = 42});
        sched::PerPolicyPredictor specialists(proto, dataset.device_names);

        // Holdout by architecture: train on 16 augmentation archs, score on
        // the paper's 5 (the generalisation regime the designs differ in).
        const auto [train, test] = dataset.split_by_model(
            {"simple", "mnist-small", "mnist-deep", "mnist-cnn", "cifar-10"});
        unified.fit(train);
        specialists.fit(train);
        std::size_t hit_unified = 0;
        std::size_t hit_specialists = 0;
        for (std::size_t i = 0; i < test.data.size(); ++i) {
            const auto truth = test.device_of(test.data.y[i]);
            hit_unified += unified.predict_row(test.data.row(i)) == truth;
            hit_specialists += specialists.predict_row(test.data.row(i)) == truth;
        }
        const auto n = static_cast<double>(test.data.size());
        std::printf("\n=== Predictor design (unseen-architecture holdout) ===\n");
        std::printf("single forest, policy as feature : %.2f%%\n",
                    100.0 * static_cast<double>(hit_unified) / n);
        std::printf("three per-policy specialist forests: %.2f%%\n",
                    100.0 * static_cast<double>(hit_specialists) / n);
        csv.row({"unified-forest", format("{}", static_cast<double>(hit_unified) / n)});
        csv.row({"per-policy-forests",
                 format("{}", static_cast<double>(hit_specialists) / n)});
    }

    // Forest-size sweep (the n_estimators axis of Table I).
    TextTable forest_table;
    forest_table.header({"n_estimators", "accuracy"});
    std::printf("\n=== Forest size sweep ===\n");
    for (const std::size_t trees : {1U, 5U, 15U, 50U, 100U, 200U}) {
        const double acc = cv_accuracy(dataset.data, trees, &pool);
        forest_table.row({std::to_string(trees), format("{:.2f}%", acc * 100.0)});
        csv.row({format("trees={}", trees), format("{}", acc)});
    }
    forest_table.print();

    // Noise sweep: how measurement noise bounds achievable accuracy.
    TextTable noise_table;
    noise_table.header({"noise sigma", "accuracy"});
    std::printf("\n=== Measurement-noise sweep ===\n");
    for (const double sigma : {0.0, 0.04, 0.08, 0.16, 0.32}) {
        auto noisy_registry = device::DeviceRegistry::standard_testbed(
            {.noise_sigma = sigma});
        const auto noisy = sched::build_scheduler_dataset(noisy_registry,
                                                          nn::zoo::all_models(), {});
        const double acc = cv_accuracy(noisy.data, 60, &pool);
        noise_table.row({format("{:.2f}", sigma), format("{:.2f}%", acc * 100.0)});
        csv.row({format("sigma={}", sigma), format("{}", acc)});
    }
    noise_table.print();
    std::printf("\nCSV written to bench_out/ablation_features.csv\n");
    return 0;
}
