// Tests for the inference engine: layer semantics, hand-computed forwards,
// finite-difference gradient checks, training convergence, the model zoo,
// weight serialization and the analytic cost accounting.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "data/synth.hpp"
#include "nn/activation.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/flatten.hpp"
#include "nn/model_builder.hpp"
#include "nn/pooling.hpp"
#include "nn/trainer.hpp"
#include "nn/weights.hpp"
#include "nn/zoo.hpp"

namespace {

using namespace mw;
using namespace mw::nn;

TEST(Activation, Names) {
    EXPECT_EQ(activation_from_name("relu"), Activation::kRelu);
    EXPECT_EQ(activation_name(Activation::kSoftmax), "softmax");
    EXPECT_THROW(activation_from_name("gelu"), InvalidArgument);
}

TEST(Activation, ReluTanhSigmoid) {
    Tensor t(Shape{4});
    t.at(0) = -1.0F;
    t.at(1) = 2.0F;
    Tensor r(t);
    apply_activation(Activation::kRelu, r);
    EXPECT_EQ(r.at(0), 0.0F);
    EXPECT_EQ(r.at(1), 2.0F);
    Tensor s(t);
    apply_activation(Activation::kSigmoid, s);
    EXPECT_NEAR(s.at(0), 1.0F / (1.0F + std::exp(1.0F)), 1e-6F);
    Tensor h(t);
    apply_activation(Activation::kTanh, h);
    EXPECT_NEAR(h.at(1), std::tanh(2.0F), 1e-6F);
}

TEST(Activation, SoftmaxRowsSumToOne) {
    Rng rng(1);
    Tensor t(Shape{5, 7});
    t.fill_normal(rng, 0.0F, 3.0F);
    apply_activation(Activation::kSoftmax, t);
    for (std::size_t r = 0; r < 5; ++r) {
        float sum = 0.0F;
        for (std::size_t c = 0; c < 7; ++c) {
            EXPECT_GT(t.at(r, c), 0.0F);
            sum += t.at(r, c);
        }
        EXPECT_NEAR(sum, 1.0F, 1e-5F);
    }
}

TEST(Activation, GradFromOutput) {
    EXPECT_EQ(activation_grad_from_output(Activation::kRelu, 0.5F), 1.0F);
    EXPECT_EQ(activation_grad_from_output(Activation::kRelu, 0.0F), 0.0F);
    EXPECT_NEAR(activation_grad_from_output(Activation::kTanh, 0.5F), 0.75F, 1e-6F);
    EXPECT_NEAR(activation_grad_from_output(Activation::kSigmoid, 0.25F), 0.1875F, 1e-6F);
    EXPECT_THROW(activation_grad_from_output(Activation::kSoftmax, 0.1F), InvalidArgument);
}

TEST(Dense, HandComputedForward) {
    Dense layer(2, 2, Activation::kIdentity);
    // W = [[1, 2], [3, 4]], b = [10, 20]; y = x W^T + b.
    layer.weights().at(0, 0) = 1.0F;
    layer.weights().at(0, 1) = 2.0F;
    layer.weights().at(1, 0) = 3.0F;
    layer.weights().at(1, 1) = 4.0F;
    layer.bias().at(0) = 10.0F;
    layer.bias().at(1) = 20.0F;
    Tensor in(Shape{1, 2});
    in.at(0, 0) = 1.0F;
    in.at(0, 1) = 1.0F;
    Tensor out(Shape{1, 2});
    layer.forward(in, out, nullptr);
    EXPECT_NEAR(out.at(0, 0), 13.0F, 1e-6F);
    EXPECT_NEAR(out.at(0, 1), 27.0F, 1e-6F);
}

TEST(Dense, ShapeValidation) {
    Dense layer(4, 3, Activation::kRelu);
    EXPECT_EQ(layer.output_shape(Shape{7, 4}), Shape({7, 3}));
    EXPECT_THROW((void)layer.output_shape(Shape{7, 5}), InvalidArgument);
    EXPECT_THROW((void)layer.output_shape(Shape{7, 4, 1, 1}), InvalidArgument);
}

TEST(Conv2d, IdentityKernelPreservesInterior) {
    Conv2d conv(1, 1, 3, Activation::kIdentity);
    conv.weights().fill(0.0F);
    conv.weights().at(4) = 1.0F;  // centre tap
    Rng rng(2);
    Tensor in(Shape{1, 1, 6, 6});
    in.fill_uniform(rng, 0.0F, 1.0F);
    Tensor out(Shape{1, 1, 6, 6});
    conv.forward(in, out, nullptr);
    EXPECT_LT(in.max_abs_diff(out), 1e-6F);
}

TEST(Conv2d, SummingKernelOnOnes) {
    // A 3x3 all-ones kernel over an all-ones image gives 9 in the interior,
    // 4 at corners and 6 at non-corner edges (zero padding).
    Conv2d conv(1, 1, 3, Activation::kIdentity);
    conv.weights().fill(1.0F);
    Tensor in(Shape{1, 1, 4, 4});
    in.fill(1.0F);
    Tensor out(Shape{1, 1, 4, 4});
    conv.forward(in, out, nullptr);
    EXPECT_NEAR(out.at(0), 4.0F, 1e-6F);       // corner
    EXPECT_NEAR(out.at(1), 6.0F, 1e-6F);       // edge
    EXPECT_NEAR(out.at(5), 9.0F, 1e-6F);       // interior
}

TEST(Conv2d, MultiChannelAccumulates) {
    Conv2d conv(2, 1, 3, Activation::kIdentity);
    conv.weights().fill(0.0F);
    conv.weights().at(4) = 1.0F;       // centre of channel 0
    conv.weights().at(9 + 4) = 2.0F;   // centre of channel 1
    Tensor in(Shape{1, 2, 3, 3});
    in.fill(1.0F);
    Tensor out(Shape{1, 1, 3, 3});
    conv.forward(in, out, nullptr);
    EXPECT_NEAR(out.at(4), 3.0F, 1e-6F);
}

TEST(Conv2d, EvenFilterRejected) {
    EXPECT_THROW(Conv2d(1, 1, 4, Activation::kRelu), InvalidArgument);
}

TEST(MaxPool, Reduces) {
    MaxPool pool(2);
    Tensor in(Shape{1, 1, 4, 4});
    for (std::size_t i = 0; i < 16; ++i) in.at(i) = static_cast<float>(i);
    Tensor out(Shape{1, 1, 2, 2});
    pool.forward(in, out, nullptr);
    EXPECT_EQ(out.at(0), 5.0F);
    EXPECT_EQ(out.at(1), 7.0F);
    EXPECT_EQ(out.at(2), 13.0F);
    EXPECT_EQ(out.at(3), 15.0F);
}

TEST(MaxPool, IndivisibleExtentThrows) {
    MaxPool pool(2);
    EXPECT_THROW((void)pool.output_shape(Shape{1, 1, 5, 4}), InvalidArgument);
}

TEST(Flatten, RoundTripBytes) {
    Flatten flat;
    Rng rng(3);
    Tensor in(Shape{2, 3, 4, 4});
    in.fill_normal(rng, 0.0F, 1.0F);
    Tensor out(Shape{2, 48});
    flat.forward(in, out, nullptr);
    for (std::size_t i = 0; i < in.numel(); ++i) EXPECT_EQ(in.at(i), out.at(i));
}

// ---- gradient checks -------------------------------------------------------

/// Loss of a model at given input/labels (softmax cross-entropy).
double model_loss(Model& model, const Tensor& x, const std::vector<std::size_t>& y) {
    const Tensor probs = model.forward(x);
    return cross_entropy(probs, y, 0, y.size());
}

/// Finite-difference check of every parameter gradient of `model`.
void gradient_check(Model& model, const Tensor& x, const std::vector<std::size_t>& y,
                    double tolerance) {
    // Analytic gradients.
    for (std::size_t li = 0; li < model.layer_count(); ++li) model.layer(li).zero_grads();
    const auto acts = model.forward_collect(x);
    const Tensor& probs = acts.back();
    Tensor dout(probs.shape());
    const float inv = 1.0F / static_cast<float>(y.size());
    for (std::size_t i = 0; i < y.size(); ++i) {
        for (std::size_t c = 0; c < probs.shape()[1]; ++c) {
            dout.at(i, c) = (probs.at(i, c) - (c == y[i] ? 1.0F : 0.0F)) * inv;
        }
    }
    Tensor current = dout;
    for (std::size_t li = model.layer_count(); li-- > 0;) {
        const Tensor& in = li == 0 ? x : acts[li - 1];
        Tensor din(in.shape());
        model.layer(li).backward(in, acts[li], current, din, nullptr);
        current = std::move(din);
    }

    // Numeric comparison on a subset of parameters (every 7th scalar).
    const double eps = 1e-3;
    for (std::size_t li = 0; li < model.layer_count(); ++li) {
        for (const auto& binding : model.layer(li).param_bindings()) {
            for (std::size_t k = 0; k < binding.value->numel(); k += 7) {
                float& w = binding.value->at(k);
                const float saved = w;
                w = saved + static_cast<float>(eps);
                const double up = model_loss(model, x, y);
                w = saved - static_cast<float>(eps);
                const double down = model_loss(model, x, y);
                w = saved;
                const double numeric = (up - down) / (2.0 * eps);
                const double analytic = binding.grad->at(k);
                EXPECT_NEAR(analytic, numeric, tolerance)
                    << "layer " << li << " param " << k;
            }
        }
    }
}

TEST(Gradients, TinyFfnn) {
    FfnnSpec spec;
    spec.input_dim = 5;
    spec.hidden = {7, 6};
    spec.output_dim = 3;
    spec.hidden_act = Activation::kTanh;  // smooth: tight finite differences
    Model model = build_model(ModelSpec{"grad-ffnn", spec, true}, 11);

    Rng rng(4);
    Tensor x(Shape{4, 5});
    x.fill_normal(rng, 0.0F, 1.0F);
    gradient_check(model, x, {0, 1, 2, 0}, 2e-3);
}

TEST(Gradients, TinyCnn) {
    CnnSpec spec;
    spec.in_channels = 1;
    spec.in_h = 6;
    spec.in_w = 6;
    spec.blocks = {{.convs = 1, .filters = 2, .filter_size = 3, .pool_size = 2}};
    spec.dense_hidden = {5};
    spec.output_dim = 3;
    spec.hidden_act = Activation::kTanh;
    Model model = build_model(ModelSpec{"grad-cnn", spec, true}, 13);

    Rng rng(5);
    Tensor x(Shape{3, 1, 6, 6});
    x.fill_normal(rng, 0.0F, 1.0F);
    gradient_check(model, x, {0, 1, 2}, 3e-3);
}

// ---- end-to-end training ---------------------------------------------------

TEST(Trainer, LearnsClusters) {
    auto data = data::make_clusters(400, 6, 3, 3.0, 21);
    FfnnSpec spec;
    spec.input_dim = 6;
    spec.hidden = {16};
    spec.output_dim = 3;
    Model model = build_model(ModelSpec{"clusters", spec, true}, 22);

    TrainConfig config;
    config.epochs = 20;
    config.learning_rate = 0.05F;
    const auto history = train(model, data.x, data.y, config);
    EXPECT_GT(history.back().accuracy, 0.9);
    EXPECT_LT(history.back().loss, history.front().loss);
}

TEST(Trainer, SimpleModelReachesIrisLevelAccuracy) {
    // §III-B.1: the paper's Simple model reaches ~97% on Iris.
    auto data = data::make_iris_like(600, 31);
    Rng rng(1);
    auto split = data::train_test_split(data, 0.25, rng);
    Model model = build_model(zoo::simple(), 33);
    TrainConfig config;
    config.epochs = 60;
    config.learning_rate = 0.03F;
    train(model, split.train.x, split.train.y, config);
    EXPECT_GT(evaluate_accuracy(model, split.test.x, split.test.y), 0.9);
}

// ---- zoo -------------------------------------------------------------------

TEST(Zoo, PaperModelStructures) {
    const Model simple = build_model(zoo::simple(), 1);
    EXPECT_EQ(simple.desc().depth, 3U);           // 2 hidden + output
    EXPECT_EQ(simple.desc().total_neurons, 15U);  // 6 + 6 + 3
    EXPECT_FALSE(simple.desc().is_cnn);

    const Model deep = build_model(zoo::mnist_deep(), 1);
    EXPECT_EQ(deep.desc().depth, 6U);
    EXPECT_EQ(deep.desc().total_neurons, 2500U + 2000 + 1500 + 1000 + 500 + 10);
    // ~12M parameters as derived in the paper's architecture.
    EXPECT_NEAR(static_cast<double>(deep.param_count()), 11.97e6, 0.2e6);

    const Model cnn = build_model(zoo::mnist_cnn(), 1);
    EXPECT_TRUE(cnn.desc().is_cnn);
    EXPECT_EQ(cnn.desc().vgg_blocks, 2U);
    EXPECT_EQ(cnn.desc().convs_per_block, 1U);
    EXPECT_EQ(cnn.desc().filter_size, 3U);
    EXPECT_EQ(cnn.desc().pool_size, 2U);

    const Model cifar = build_model(zoo::cifar10(), 1);
    EXPECT_EQ(cifar.desc().vgg_blocks, 3U);
    EXPECT_EQ(cifar.desc().convs_per_block, 2U);
    EXPECT_EQ(cifar.input_shape(2), Shape({2, 3, 32, 32}));
}

TEST(Zoo, TwentyOneArchitecturesAllBuild) {
    const auto specs = zoo::all_models();
    EXPECT_EQ(specs.size(), 21U);
    for (const auto& spec : specs) {
        const Model m = build_model(spec, 3);
        Rng rng(6);
        Tensor x(m.input_shape(2));
        x.fill_uniform(rng, 0.0F, 1.0F);
        const Tensor out = m.forward(x);
        EXPECT_EQ(out.shape()[0], 2U) << spec.name;
        EXPECT_EQ(out.shape()[1], m.desc().output_dim) << spec.name;
    }
}

TEST(Zoo, ByNameLookup) {
    EXPECT_EQ(zoo::by_name("cifar-10").name, "cifar-10");
    EXPECT_THROW(zoo::by_name("resnet-50"), InvalidArgument);
}

// ---- weights I/O -----------------------------------------------------------

TEST(Weights, SaveLoadRoundTrip) {
    const std::string path = "/tmp/mw_test_weights.bin";
    Model a = build_model(zoo::simple(), 77);
    save_weights(a, path);

    Model b = build_model(zoo::simple(), 99);  // different init
    load_weights(b, path);

    Rng rng(7);
    Tensor x(a.input_shape(8));
    x.fill_uniform(rng, 0.0F, 1.0F);
    const Tensor ya = a.forward(x);
    const Tensor yb = b.forward(x);
    EXPECT_EQ(ya.max_abs_diff(yb), 0.0F);
    std::filesystem::remove(path);
}

TEST(Weights, ArchitectureMismatchRejected) {
    const std::string path = "/tmp/mw_test_weights2.bin";
    Model a = build_model(zoo::simple(), 1);
    save_weights(a, path);
    Model b = build_model(zoo::mnist_small(), 1);
    EXPECT_THROW(load_weights(b, path), IoError);
    std::filesystem::remove(path);
}

TEST(Weights, HeInitHasExpectedScale) {
    FfnnSpec spec;
    spec.input_dim = 512;
    spec.hidden = {512};
    spec.output_dim = 10;
    Model model = build_model(ModelSpec{"init", spec, true}, 17);
    auto* dense = dynamic_cast<Dense*>(&model.layer(0));
    ASSERT_NE(dense, nullptr);
    OnlineStats stats;
    for (const float w : dense->weights().span()) stats.add(w);
    EXPECT_NEAR(stats.mean(), 0.0, 0.01);
    EXPECT_NEAR(stats.stddev(), std::sqrt(2.0 / 512.0), 0.005);
}

// ---- cost accounting -------------------------------------------------------

TEST(Cost, DenseFlopsAndWorkItems) {
    Dense layer(784, 800, Activation::kRelu);
    const LayerCost c = layer.cost(Shape{32, 784});
    EXPECT_NEAR(c.flops, 32.0 * 2 * 784 * 800, 1.0);
    EXPECT_NEAR(c.work_items, 32.0 * 800, 1.0);
    EXPECT_EQ(c.kernel_launches, 1);
    EXPECT_NEAR(c.bytes_weights, (784.0 * 800 + 800) * 4, 1.0);
}

TEST(Cost, ModelAggregationScalesWithBatch) {
    const Model m = build_model(zoo::mnist_small(), 1);
    const ModelCost c1 = m.cost(1);
    const ModelCost c64 = m.cost(64);
    EXPECT_NEAR(c64.total.flops, 64.0 * c1.total.flops, 1.0);
    EXPECT_EQ(c1.per_layer.size(), m.layer_count());
    // Per-sample flops of mnist-small: 2*(784*784 + 784*800 + 800*10).
    EXPECT_NEAR(c1.total.flops, 2.0 * (784.0 * 784 + 784 * 800 + 800 * 10), 1.0);
}

TEST(Cost, BytesPerSampleMatchesInput) {
    const Model cifar = build_model(zoo::cifar10(), 1);
    EXPECT_EQ(cifar.bytes_per_sample(), 3U * 32 * 32 * 4);
    const Model simple = build_model(zoo::simple(), 1);
    EXPECT_EQ(simple.bytes_per_sample(), 4U * 4);
}

TEST(Model, ClassifyReturnsArgmax) {
    Model m = build_model(zoo::simple(), 5);
    Rng rng(8);
    Tensor x(m.input_shape(16));
    x.fill_uniform(rng, 0.0F, 1.0F);
    const auto labels = m.classify(x);
    const Tensor probs = m.forward(x);
    for (std::size_t i = 0; i < 16; ++i) {
        for (std::size_t c = 0; c < 3; ++c) {
            EXPECT_LE(probs.at(i, c), probs.at(i, labels[i]) + 1e-7F);
        }
    }
}

TEST(Model, ParallelForwardMatchesSerial) {
    Model m = build_model(zoo::mnist_cnn(), 9);
    Rng rng(9);
    Tensor x(m.input_shape(8));
    x.fill_uniform(rng, 0.0F, 1.0F);
    const Tensor serial = m.forward(x);
    ThreadPool pool(3);
    const Tensor parallel = m.forward(x, &pool);
    EXPECT_LT(serial.max_abs_diff(parallel), 1e-6F);
}

}  // namespace
