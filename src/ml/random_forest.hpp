// Random Forest — the scheduler's production classifier (§V-C, Table I).
#pragma once

#include "common/thread_pool.hpp"
#include "ml/decision_tree.hpp"

namespace mw::ml {

/// Forest hyperparameters; names follow Table I of the paper.
struct ForestConfig {
    std::size_t n_estimators = 50;
    std::size_t max_depth = 8;
    std::size_t min_samples_leaf = 1;
    SplitCriterion criterion = SplitCriterion::kGini;
    std::uint64_t seed = 1;

    /// Build from a grid-search ParamSet (n_estimators, max_depth,
    /// min_samples_leaf, criterion as 0/1).
    static ForestConfig from_params(const ParamSet& params);
};

/// Bagged CART ensemble with sqrt-feature subsampling and majority vote.
class RandomForest final : public Classifier {
public:
    explicit RandomForest(ForestConfig config = {}, ThreadPool* pool = nullptr);

    void fit(const MlDataset& data) override;
    [[nodiscard]] int predict(std::span<const double> row) const override;
    [[nodiscard]] int predict_with_scratch(std::span<const double> row,
                                           std::span<double> scratch) const override;
    [[nodiscard]] std::size_t scratch_size() const override { return classes_; }
    [[nodiscard]] ClassifierPtr clone() const override;
    [[nodiscard]] std::string name() const override { return "random-forest"; }

    /// Per-class vote fractions for one row (useful for confidence).
    [[nodiscard]] std::vector<double> predict_proba(std::span<const double> row) const;

    [[nodiscard]] const ForestConfig& config() const { return config_; }
    [[nodiscard]] std::size_t tree_count() const { return trees_.size(); }

private:
    ForestConfig config_;
    ThreadPool* pool_;
    std::vector<DecisionTree> trees_;
    std::size_t classes_ = 0;
};

}  // namespace mw::ml
