// mw::obs suite: TraceRecorder ring semantics (publish, drop-newest,
// concurrent record vs snapshot — TSan coverage under the `tsan` preset),
// MetricsRegistry registration rules, LogHistogram percentiles, the three
// exporters, and the end-to-end serving hook test: every request-path phase
// present in a Chrome trace, correlated by request id.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstring>
#include <future>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "ml/random_forest.hpp"
#include "nn/zoo.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sched/scheduler.hpp"
#include "sched/scheduler_dataset.hpp"
#include "serve/server.hpp"
#include "workload/stream.hpp"

namespace {

using namespace mw;
using namespace mw::obs;

// ---------------------------------------------------------------------------
// TraceRecorder
// ---------------------------------------------------------------------------

TEST(TraceRecorder, RecordsAndSnapshotsSortedByStart) {
    TraceRecorder recorder({.ring_capacity = 16});
    recorder.record(Phase::kExecute, 7, 2.0, 3.0, "gpu");
    recorder.record(Phase::kSubmit, 7, 1.0, 1.0, "model-a");
    recorder.record(Phase::kComplete, 7, 3.5, 3.5, "completed");

    const std::vector<Span> spans = recorder.snapshot();
    ASSERT_EQ(spans.size(), 3U);
    EXPECT_EQ(spans[0].phase, Phase::kSubmit);
    EXPECT_EQ(spans[1].phase, Phase::kExecute);
    EXPECT_EQ(spans[2].phase, Phase::kComplete);
    EXPECT_TRUE(spans[0].instant());
    EXPECT_FALSE(spans[1].instant());
    EXPECT_DOUBLE_EQ(spans[1].duration_s(), 1.0);
    for (const Span& s : spans) EXPECT_EQ(s.request_id, 7U);
    EXPECT_STREQ(spans[1].label, "gpu");
    EXPECT_EQ(recorder.dropped(), 0U);
    EXPECT_EQ(recorder.thread_count(), 1U);
}

TEST(TraceRecorder, LongLabelsAreTruncatedNotOverflowed) {
    TraceRecorder recorder;
    const std::string longer(100, 'x');
    recorder.record(Phase::kBatch, 1, 0.0, 1.0, longer.c_str());
    recorder.record(Phase::kBatch, 2, 0.0, 1.0, nullptr);
    const auto spans = recorder.snapshot();
    ASSERT_EQ(spans.size(), 2U);
    EXPECT_EQ(std::strlen(spans[0].label), Span::kLabelCapacity - 1);
    EXPECT_EQ(std::strlen(spans[1].label), 0U);
}

TEST(TraceRecorder, FullRingDropsNewestAndCounts) {
    TraceRecorder recorder({.ring_capacity = 4});
    for (std::uint64_t i = 0; i < 10; ++i) {
        recorder.record(Phase::kQueue, i, static_cast<double>(i),
                        static_cast<double>(i) + 0.5, "q");
    }
    const auto spans = recorder.snapshot();
    ASSERT_EQ(spans.size(), 4U);
    // Drop-newest: the first records survive (published slots are immutable).
    for (std::uint64_t i = 0; i < 4; ++i) EXPECT_EQ(spans[i].request_id, i);
    EXPECT_EQ(recorder.dropped(), 6U);
}

TEST(TraceRecorder, InstallRoutesMacroHelpersAndUninstallsOnDestruction) {
    EXPECT_EQ(TraceRecorder::installed(), nullptr);
    // No recorder installed: helper is a no-op, not a crash.
    trace_span(Phase::kSubmit, 1, 0.0, 0.0, "nobody-listening");
    {
        TraceRecorder recorder;
        TraceRecorder::install(&recorder);
        EXPECT_EQ(TraceRecorder::installed(), &recorder);
        trace_instant(Phase::kSubmit, 42, 1.25, "via-helper");
        const auto spans = recorder.snapshot();
        ASSERT_EQ(spans.size(), 1U);
        EXPECT_EQ(spans[0].request_id, 42U);
    }
    // Destruction uninstalled the recorder.
    EXPECT_EQ(TraceRecorder::installed(), nullptr);
}

TEST(TraceRecorder, ConcurrentRecordersGetPrivateRings) {
    TraceRecorder recorder({.ring_capacity = 4096});
    constexpr int kThreads = 4;
    constexpr int kPerThread = 1000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&recorder, t] {
            for (int i = 0; i < kPerThread; ++i) {
                recorder.record(Phase::kExecute,
                                static_cast<std::uint64_t>(t * kPerThread + i),
                                static_cast<double>(i), static_cast<double>(i) + 1.0,
                                "worker");
            }
        });
    }
    // Concurrent snapshots must be safe (and see only fully-written spans).
    for (int i = 0; i < 50; ++i) {
        for (const Span& s : recorder.snapshot()) {
            ASSERT_DOUBLE_EQ(s.duration_s(), 1.0);
            ASSERT_STREQ(s.label, "worker");
        }
    }
    for (auto& t : threads) t.join();

    const auto spans = recorder.snapshot();
    EXPECT_EQ(spans.size(), static_cast<std::size_t>(kThreads * kPerThread));
    EXPECT_EQ(recorder.dropped(), 0U);
    EXPECT_EQ(recorder.thread_count(), static_cast<std::size_t>(kThreads));
    std::set<std::uint64_t> ids;
    for (const Span& s : spans) ids.insert(s.request_id);
    EXPECT_EQ(ids.size(), spans.size()) << "every record preserved exactly once";
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, CreateOrGetReturnsStableReferences) {
    MetricsRegistry registry;
    Counter& a = registry.counter("requests_total");
    Counter& b = registry.counter("requests_total");
    EXPECT_EQ(&a, &b);
    a.inc(3);
    b.inc();
    EXPECT_EQ(a.value(), 4U);
    EXPECT_EQ(registry.size(), 1U);
}

TEST(MetricsRegistry, KindMismatchThrows) {
    MetricsRegistry registry;
    registry.counter("latency");
    EXPECT_THROW(registry.gauge("latency"), InvalidArgument);
    EXPECT_THROW(registry.histogram("latency"), InvalidArgument);
    EXPECT_THROW(registry.counter(""), InvalidArgument);
}

TEST(MetricsRegistry, SeriesAreSortedByName) {
    MetricsRegistry registry;
    registry.gauge("zeta");
    registry.counter("alpha");
    registry.histogram("mid");
    const auto series = registry.series();
    ASSERT_EQ(series.size(), 3U);
    EXPECT_EQ(series[0].name, "alpha");
    EXPECT_EQ(series[0].kind, MetricKind::kCounter);
    EXPECT_EQ(series[1].name, "mid");
    EXPECT_EQ(series[1].kind, MetricKind::kHistogram);
    EXPECT_EQ(series[2].name, "zeta");
    EXPECT_EQ(series[2].kind, MetricKind::kGauge);
}

TEST(MetricsRegistry, ConcurrentUpdatesAreLossless) {
    MetricsRegistry registry;
    constexpr int kThreads = 4;
    constexpr int kPerThread = 10000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&registry] {
            Counter& c = registry.counter("hits");
            Gauge& g = registry.gauge("load");
            LogHistogram& h = registry.histogram("lat");
            for (int i = 0; i < kPerThread; ++i) {
                c.inc();
                g.add(0.5);
                h.add(1e-3);
            }
        });
    }
    for (auto& t : threads) t.join();
    const auto total = static_cast<std::uint64_t>(kThreads) * kPerThread;
    EXPECT_EQ(registry.counter("hits").value(), total);
    EXPECT_NEAR(registry.gauge("load").value(), 0.5 * static_cast<double>(total),
                1e-6);
    EXPECT_EQ(registry.histogram("lat").count(), total);
}

TEST(LogHistogram, EmptyIsNaNAndAddsAreBucketed) {
    LogHistogram hist;
    EXPECT_TRUE(std::isnan(hist.percentile(50.0)));
    hist.add(2e-3);
    EXPECT_EQ(hist.count(), 1U);
    // One sample: every percentile reports its bucket's midpoint, within one
    // bucket width (x10^(1/20) ~ 1.122) of the sample.
    const double factor = std::pow(10.0, 1.0 / 20.0);
    for (double p : {0.0, 50.0, 100.0}) {
        const double est = hist.percentile(p);
        EXPECT_LE(est, 2e-3 * factor);
        EXPECT_GE(est * factor, 2e-3);
    }
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

TEST(Exporters, ChromeTraceShapesSpansAndInstants) {
    TraceRecorder recorder;
    recorder.record(Phase::kQueue, 11, 0.001, 0.003, "model-a");
    recorder.record(Phase::kAdmit, 11, 0.001, 0.001, "admitted");
    std::ostringstream out;
    write_chrome_trace(out, recorder);
    const std::string json = out.str();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos) << "complete event";
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos) << "instant event";
    EXPECT_NE(json.find("\"request_id\":11"), std::string::npos);
    EXPECT_NE(json.find("queue"), std::string::npos);
    EXPECT_NE(json.find("admitted"), std::string::npos);
    // ts is microseconds: 0.001 s -> 1000 us.
    EXPECT_NE(json.find("\"ts\":1000"), std::string::npos);
}

TEST(Exporters, PrometheusAndCsvCoverEveryKind) {
    MetricsRegistry registry;
    registry.counter("mw_requests_total").inc(5);
    registry.gauge("mw_inflight").set(2.5);
    LogHistogram& h = registry.histogram("mw_latency_seconds");
    for (int i = 0; i < 100; ++i) h.add(1e-3);

    std::ostringstream prom;
    write_prometheus(prom, registry);
    const std::string text = prom.str();
    EXPECT_NE(text.find("# TYPE mw_requests_total counter"), std::string::npos);
    EXPECT_NE(text.find("mw_requests_total 5"), std::string::npos);
    EXPECT_NE(text.find("mw_inflight 2.5"), std::string::npos);
    EXPECT_NE(text.find("mw_latency_seconds_count 100"), std::string::npos);
    EXPECT_NE(text.find("quantile=\"0.99\""), std::string::npos);

    std::ostringstream csv;
    write_csv(csv, registry);
    const std::string table = csv.str();
    EXPECT_NE(table.find("name,kind,value,count,p50_s,p95_s,p99_s"),
              std::string::npos);
    EXPECT_NE(table.find("\"mw_requests_total\",counter,5"), std::string::npos);
    EXPECT_NE(table.find("\"mw_latency_seconds\",histogram"), std::string::npos);
}

TEST(Exporters, EmptyHistogramExportsWithoutNaNLiterals) {
    MetricsRegistry registry;
    registry.histogram("mw_empty_seconds");
    std::ostringstream prom;
    write_prometheus(prom, registry);
    EXPECT_EQ(prom.str().find("nan"), std::string::npos)
        << "Prometheus text must not contain NaN literals";
    std::ostringstream csv;
    write_csv(csv, registry);
    EXPECT_NE(csv.str().find("mw_empty_seconds"), std::string::npos);
}

#if defined(MW_OBS_ENABLED)

// ---------------------------------------------------------------------------
// End-to-end: the Server's hooks emit every phase, correlated by request id.
// ---------------------------------------------------------------------------

struct ServeWorld {
    device::DeviceRegistry registry = device::DeviceRegistry::standard_testbed();
    sched::Dispatcher dispatcher{registry};
    std::optional<sched::OnlineScheduler> scheduler;
    ManualClock clock;

    ServeWorld() {
        dispatcher.register_model(nn::zoo::simple(), 7);
        dispatcher.deploy_all();
        const auto dataset = sched::build_scheduler_dataset(
            registry, {nn::zoo::simple()}, {.batches = {1, 4, 16}});
        sched::DevicePredictor predictor(
            std::make_unique<ml::RandomForest>(
                ml::ForestConfig{.n_estimators = 8, .seed = 3}),
            dataset.device_names);
        predictor.fit(dataset);
        scheduler.emplace(dispatcher, std::move(predictor), dataset,
                          sched::SchedulerConfig{.explore_probability = 0.0});
        for (device::Device* dev : registry.devices()) dev->reset_timeline();
    }
};

TEST(ServerTracing, EveryPhasePresentAndCorrelatedByRequestId) {
    ServeWorld world;
    TraceRecorder recorder;
    TraceRecorder::install(&recorder);

    std::vector<std::uint64_t> completed_ids;
    {
        serve::ServerConfig config;
        config.workers = 2;
        // ManualClock never advances, so the batching max-wait window would
        // never expire; single-request batches still traverse (and trace)
        // every pipeline phase.
        config.batching.enabled = false;
        serve::Server server(*world.scheduler, world.dispatcher, world.clock,
                             config);
        workload::SyntheticSource source(5);
        std::vector<std::future<serve::Response>> futures;
        for (int i = 0; i < 12; ++i) {
            futures.push_back(server.submit(serve::InferenceRequest{
                "simple", source.next_batch(2, 4), sched::Policy::kMaxThroughput,
                0.0}));
        }
        for (auto& f : futures) {
            ASSERT_EQ(f.get().status, serve::RequestStatus::kCompleted);
        }
        server.stop();
        // Request ids are assigned 1..N in submit order.
        for (std::uint64_t id = 1; id <= 12; ++id) completed_ids.push_back(id);
    }
    TraceRecorder::install(nullptr);

    const std::vector<Span> spans = recorder.snapshot();
    EXPECT_EQ(recorder.dropped(), 0U);

    std::array<std::set<std::uint64_t>, kPhaseCount> ids_by_phase;
    for (const Span& s : spans) {
        ids_by_phase[static_cast<std::size_t>(s.phase)].insert(s.request_id);
        EXPECT_GE(s.t1, s.t0) << phase_name(s.phase);
    }
    // A healthy (fault-free) run traverses exactly the request-path phases;
    // the fault/resilience phases must NOT appear without injected faults.
    for (std::size_t phase = 0; phase < kRequestPathPhaseCount; ++phase) {
        EXPECT_FALSE(ids_by_phase[phase].empty())
            << "phase " << phase_name(static_cast<Phase>(phase))
            << " missing from the trace";
    }
    for (std::size_t phase = kRequestPathPhaseCount; phase < kPhaseCount; ++phase) {
        EXPECT_TRUE(ids_by_phase[phase].empty())
            << "fault phase " << phase_name(static_cast<Phase>(phase))
            << " appeared in a fault-free trace";
    }

    const auto& submit = ids_by_phase[static_cast<std::size_t>(Phase::kSubmit)];
    for (const std::uint64_t id : completed_ids) {
        // Per-request phases carry the request's own id...
        EXPECT_TRUE(submit.count(id)) << "request " << id;
        EXPECT_TRUE(ids_by_phase[static_cast<std::size_t>(Phase::kAdmit)].count(id));
        EXPECT_TRUE(ids_by_phase[static_cast<std::size_t>(Phase::kQueue)].count(id));
        EXPECT_TRUE(
            ids_by_phase[static_cast<std::size_t>(Phase::kComplete)].count(id));
    }
    // ...and batch-scoped phases carry some submitted request's id (the batch
    // leader), so every span in the trace is reachable from a request.
    for (const Phase phase : {Phase::kBatch, Phase::kDispatch, Phase::kExecute}) {
        for (const std::uint64_t id :
             ids_by_phase[static_cast<std::size_t>(phase)]) {
            EXPECT_TRUE(submit.count(id))
                << phase_name(phase) << " span has unknown request id " << id;
        }
    }

    // The Chrome export of a real serving trace names every request-path phase.
    std::ostringstream out;
    write_chrome_trace(out, recorder);
    const std::string json = out.str();
    for (std::size_t phase = 0; phase < kRequestPathPhaseCount; ++phase) {
        EXPECT_NE(json.find(phase_name(static_cast<Phase>(phase))),
                  std::string::npos);
    }
}

TEST(ServerTracing, ServerStatsInvariantsHoldAfterRegistryMigration) {
    ServeWorld world;
    serve::ServerConfig config;
    config.workers = 2;
    config.queue_capacity = 4;
    config.batching.enabled = false;  // ManualClock: see above
    config.admission.policy = serve::BackpressurePolicy::kRejectNewest;
    serve::Server server(*world.scheduler, world.dispatcher, world.clock, config);

    workload::SyntheticSource source(6);
    std::vector<std::future<serve::Response>> futures;
    for (int i = 0; i < 64; ++i) {
        futures.push_back(server.submit(serve::InferenceRequest{
            "simple", source.next_batch(1, 4), sched::Policy::kMaxThroughput, 0.0}));
    }
    for (auto& f : futures) (void)f.get();
    server.stop();

    const serve::PolicyCounters t = server.stats().totals();
    EXPECT_EQ(t.submitted, 64U);
    EXPECT_EQ(t.submitted, t.admitted + t.rejected_full + t.shed);
    EXPECT_EQ(t.admitted, t.completed + t.shed + t.failed + t.evicted + t.shutdown);
    EXPECT_GT(t.completed, 0U);
    // The same counters are readable by name through the registry.
    const auto& registry = server.metrics();
    std::uint64_t submitted_via_registry = 0;
    for (const auto& series : registry.series()) {
        if (series.kind == MetricKind::kCounter &&
            series.name.find("mw_serve_submitted_total") == 0) {
            submitted_via_registry += series.counter->value();
        }
    }
    EXPECT_EQ(submitted_via_registry, 64U);
}

#endif  // MW_OBS_ENABLED

}  // namespace
