#include "graph/dag.hpp"

#include <cmath>
#include <cstdint>

#include "common/error.hpp"

namespace mw::graph {

NodeId Graph::add_node(OpNode node) {
    const NodeId id = nodes_.size();
    for (const NodeId producer : node.inputs) {
        MW_CHECK(producer < id, "graph `" + name_ + "`: node `" + node.name +
                                    "` references producer " + std::to_string(producer) +
                                    " which does not exist yet");
    }
    MW_CHECK(node.out_bytes >= 0.0 && std::isfinite(node.out_bytes),
             "node `" + node.name + "`: out_bytes must be finite and non-negative");
    MW_CHECK(node.external_in_bytes >= 0.0 && std::isfinite(node.external_in_bytes),
             "node `" + node.name + "`: external_in_bytes must be finite and non-negative");
    nodes_.push_back(std::move(node));
    return id;
}

std::vector<std::vector<NodeId>> Graph::consumers() const {
    std::vector<std::vector<NodeId>> out(nodes_.size());
    for (NodeId v = 0; v < nodes_.size(); ++v) {
        for (const NodeId u : nodes_[v].inputs) out[u].push_back(v);
    }
    return out;
}

void Graph::validate() const {
    for (NodeId v = 0; v < nodes_.size(); ++v) {
        const OpNode& node = nodes_[v];
        for (const NodeId u : node.inputs) {
            if (u >= v) {
                throw InvalidArgument("graph `" + name_ + "`: node " + std::to_string(v) +
                                      " (`" + node.name + "`) has producer " +
                                      std::to_string(u) +
                                      " >= its own id; nodes must be topologically ordered");
            }
        }
        if (!(node.out_bytes >= 0.0) || !std::isfinite(node.out_bytes) ||
            !(node.external_in_bytes >= 0.0) || !std::isfinite(node.external_in_bytes)) {
            throw InvalidArgument("graph `" + name_ + "`: node " + std::to_string(v) + " (`" +
                                  node.name + "`) has a non-finite or negative footprint");
        }
    }
}

nn::LayerCost Graph::total_cost() const {
    nn::LayerCost total;
    for (const OpNode& node : nodes_) total += node.cost;
    return total;
}

double Graph::boundary_bytes() const {
    const auto cons = consumers();
    double bytes = 0.0;
    for (NodeId v = 0; v < nodes_.size(); ++v) {
        bytes += nodes_[v].external_in_bytes;
        if (cons[v].empty()) bytes += nodes_[v].out_bytes;
    }
    return bytes;
}

double Graph::worst_case_intensity() const {
    double flops = 0.0;
    double bytes = 0.0;
    for (const OpNode& node : nodes_) {
        flops += node.cost.flops;
        bytes += node.out_bytes + node.external_in_bytes;
        for (const NodeId u : node.inputs) bytes += nodes_[u].out_bytes;
    }
    return bytes > 0.0 ? flops / bytes : 0.0;
}

std::uint64_t Graph::fingerprint() const {
    constexpr std::uint64_t kOffset = 1469598103934665603ULL;
    constexpr std::uint64_t kPrime = 1099511628211ULL;
    std::uint64_t h = kOffset;
    const auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (i * 8)) & 0xffU;
            h *= kPrime;
        }
    };
    const auto mix_double = [&mix](double v) {
        std::uint64_t bits = 0;
        static_assert(sizeof(bits) == sizeof(v));
        __builtin_memcpy(&bits, &v, sizeof(bits));
        mix(bits);
    };
    for (const char c : name_) mix(static_cast<std::uint64_t>(c));
    mix(nodes_.size());
    for (const OpNode& node : nodes_) {
        mix_double(node.cost.flops);
        mix_double(node.cost.bytes_in);
        mix_double(node.cost.bytes_out);
        mix_double(node.cost.bytes_weights);
        mix_double(node.cost.work_items);
        mix(static_cast<std::uint64_t>(node.cost.kernel_launches));
        mix_double(node.out_bytes);
        mix_double(node.external_in_bytes);
        mix(node.inputs.size());
        for (const NodeId u : node.inputs) mix(u);
    }
    return h;
}

}  // namespace mw::graph
