// Energy integration over sampled power (Watt-seconds -> Joules, Fig. 4).
#pragma once

#include "power/meter.hpp"

namespace mw::power {

/// Integrates a PowerMeter over simulated time with trapezoidal samples.
class EnergyCounter {
public:
    /// `period_s`: sampling interval (nvidia-smi-style polling).
    EnergyCounter(const PowerMeter& meter, double period_s);

    /// Integrate the meter over [t0, t1]; returns Joules. Samples lie on the
    /// absolute grid k*period_s (not anchored at t0), which makes the
    /// integral additive: integrate(a,b) + integrate(b,c) == integrate(a,c)
    /// up to FP rounding, for any split point b.
    [[nodiscard]] double integrate(double t0, double t1) const;

    /// Joules consumed above a baseline power level over [t0, t1] — the
    /// "extra energy caused by this run" view.
    [[nodiscard]] double integrate_above(double t0, double t1, double baseline_w) const;

private:
    const PowerMeter* meter_;
    double period_s_;
};

}  // namespace mw::power
