file(REMOVE_RECURSE
  "CMakeFiles/mw_data.dir/dataset.cpp.o"
  "CMakeFiles/mw_data.dir/dataset.cpp.o.d"
  "CMakeFiles/mw_data.dir/synth.cpp.o"
  "CMakeFiles/mw_data.dir/synth.cpp.o.d"
  "libmw_data.a"
  "libmw_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mw_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
