#include "ml/metrics.hpp"

#include "common/error.hpp"

namespace mw::ml {
namespace {

struct PerClass {
    std::vector<double> precision;
    std::vector<double> recall;
    std::vector<double> f1;
    std::vector<std::size_t> support;
};

PerClass per_class_scores(const std::vector<int>& truth, const std::vector<int>& predicted,
                          std::size_t classes) {
    const auto cm = confusion_matrix(truth, predicted, classes);
    PerClass out;
    out.precision.resize(classes);
    out.recall.resize(classes);
    out.f1.resize(classes);
    out.support.resize(classes);
    for (std::size_t c = 0; c < classes; ++c) {
        std::size_t tp = cm[c * classes + c];
        std::size_t fp = 0;
        std::size_t fn = 0;
        for (std::size_t o = 0; o < classes; ++o) {
            if (o == c) continue;
            fp += cm[o * classes + c];
            fn += cm[c * classes + o];
        }
        out.support[c] = tp + fn;
        out.precision[c] = (tp + fp) > 0 ? static_cast<double>(tp) / (tp + fp) : 0.0;
        out.recall[c] = (tp + fn) > 0 ? static_cast<double>(tp) / (tp + fn) : 0.0;
        const double denom = out.precision[c] + out.recall[c];
        out.f1[c] = denom > 0.0 ? 2.0 * out.precision[c] * out.recall[c] / denom : 0.0;
    }
    return out;
}

}  // namespace

double accuracy(const std::vector<int>& truth, const std::vector<int>& predicted) {
    MW_CHECK(truth.size() == predicted.size(), "label vectors differ in size");
    MW_CHECK(!truth.empty(), "accuracy of empty labels");
    std::size_t correct = 0;
    for (std::size_t i = 0; i < truth.size(); ++i) {
        if (truth[i] == predicted[i]) ++correct;
    }
    return static_cast<double>(correct) / static_cast<double>(truth.size());
}

std::vector<std::size_t> confusion_matrix(const std::vector<int>& truth,
                                          const std::vector<int>& predicted,
                                          std::size_t classes) {
    MW_CHECK(truth.size() == predicted.size(), "label vectors differ in size");
    std::vector<std::size_t> cm(classes * classes, 0);
    for (std::size_t i = 0; i < truth.size(); ++i) {
        MW_CHECK(truth[i] >= 0 && static_cast<std::size_t>(truth[i]) < classes,
                 "truth label out of range");
        MW_CHECK(predicted[i] >= 0 && static_cast<std::size_t>(predicted[i]) < classes,
                 "predicted label out of range");
        ++cm[truth[i] * classes + predicted[i]];
    }
    return cm;
}

PrfScores macro_scores(const std::vector<int>& truth, const std::vector<int>& predicted,
                       std::size_t classes) {
    const PerClass pc = per_class_scores(truth, predicted, classes);
    PrfScores s;
    for (std::size_t c = 0; c < classes; ++c) {
        s.precision += pc.precision[c];
        s.recall += pc.recall[c];
        s.f1 += pc.f1[c];
    }
    const auto k = static_cast<double>(classes);
    s.precision /= k;
    s.recall /= k;
    s.f1 /= k;
    return s;
}

PrfScores weighted_scores(const std::vector<int>& truth, const std::vector<int>& predicted,
                          std::size_t classes) {
    const PerClass pc = per_class_scores(truth, predicted, classes);
    PrfScores s;
    std::size_t total = 0;
    for (std::size_t c = 0; c < classes; ++c) total += pc.support[c];
    MW_CHECK(total > 0, "no samples");
    for (std::size_t c = 0; c < classes; ++c) {
        const double w = static_cast<double>(pc.support[c]) / static_cast<double>(total);
        s.precision += w * pc.precision[c];
        s.recall += w * pc.recall[c];
        s.f1 += w * pc.f1[c];
    }
    return s;
}

}  // namespace mw::ml
