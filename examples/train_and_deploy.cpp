// The full Fig. 2 lifecycle: describe an architecture, have the Model
// Building Module build it, train it offline on a (synthetic) dataset,
// persist the weights through the Weights Building Module, then restore and
// deploy onto every device and verify all devices classify identically.
#include <cstdio>
#include <filesystem>

#include "data/synth.hpp"
#include "nn/trainer.hpp"
#include "nn/weights.hpp"
#include "nn/zoo.hpp"
#include "sched/dispatcher.hpp"

using namespace mw;

int main() {
    const std::string weights_path = "/tmp/manyworlds_simple.weights";

    // --- offline: build and train the paper's Simple (Iris) model ---
    {
        auto registry = device::DeviceRegistry::standard_testbed();
        sched::Dispatcher dispatcher(registry);
        nn::Model& model = dispatcher.register_model(nn::zoo::simple(), /*weight_seed=*/42);
        std::printf("built: %s\n", model.summary().c_str());

        const auto data = data::make_iris_like(600, /*seed=*/11);
        Rng rng(1);
        const auto split = data::train_test_split(data, 0.25, rng);

        nn::TrainConfig config;
        config.epochs = 60;
        config.learning_rate = 0.03F;
        nn::train(model, split.train.x, split.train.y, config);
        const double accuracy = nn::evaluate_accuracy(model, split.test.x, split.test.y);
        std::printf("trained on iris-like data: test accuracy %.1f%% (paper: ~97%%)\n",
                    accuracy * 100.0);

        nn::save_weights(model, weights_path);
        std::printf("weights saved to %s\n", weights_path.c_str());
    }

    // --- online: a fresh process restores the weights and deploys ---
    {
        auto registry = device::DeviceRegistry::standard_testbed();
        sched::Dispatcher dispatcher(registry);
        dispatcher.register_model(nn::zoo::simple(), /*weight_seed=*/999);  // wrong init
        dispatcher.load_weights_from("simple", weights_path);               // restored
        dispatcher.deploy("simple");

        // Every device classifies the same payload identically (the paper's
        // kernels are portable across CPU/iGPU/dGPU).
        const auto probe = data::make_iris_like(8, /*seed=*/5);
        Tensor reference;
        for (device::Device* dev : registry.devices()) {
            auto result = dev->run("simple", probe.x, /*sim_time=*/0.0);
            std::printf("%-10s latency %.3g us, predictions:", dev->name().c_str(),
                        result.measurement.latency_s() * 1e6);
            const auto labels = dispatcher.model("simple").classify(probe.x);
            for (const auto label : labels) std::printf(" %zu", label);
            std::printf("\n");
            if (reference.empty()) {
                reference = std::move(result.outputs);
            } else if (reference.max_abs_diff(result.outputs) != 0.0F) {
                std::printf("ERROR: devices disagree!\n");
                return 1;
            }
        }
        std::printf("all devices produced bit-identical outputs\n");
    }
    std::filesystem::remove(weights_path);
    return 0;
}
