// Monotonic wall-clock stopwatch used by the measurement harness and benches.
#pragma once

#include <chrono>

namespace mw {

/// A restartable monotonic stopwatch. Construction starts it.
class Stopwatch {
public:
    Stopwatch() : start_(Clock::now()) {}

    /// Restart and return the elapsed seconds since the previous start.
    double lap() {
        const auto now = Clock::now();
        const double s = std::chrono::duration<double>(now - start_).count();
        start_ = now;
        return s;
    }

    /// Elapsed seconds since the last (re)start without restarting.
    [[nodiscard]] double elapsed() const {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    void restart() { start_ = Clock::now(); }

private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

}  // namespace mw
