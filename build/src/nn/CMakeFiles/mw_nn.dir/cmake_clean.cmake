file(REMOVE_RECURSE
  "CMakeFiles/mw_nn.dir/activation.cpp.o"
  "CMakeFiles/mw_nn.dir/activation.cpp.o.d"
  "CMakeFiles/mw_nn.dir/conv2d.cpp.o"
  "CMakeFiles/mw_nn.dir/conv2d.cpp.o.d"
  "CMakeFiles/mw_nn.dir/dense.cpp.o"
  "CMakeFiles/mw_nn.dir/dense.cpp.o.d"
  "CMakeFiles/mw_nn.dir/flatten.cpp.o"
  "CMakeFiles/mw_nn.dir/flatten.cpp.o.d"
  "CMakeFiles/mw_nn.dir/im2col.cpp.o"
  "CMakeFiles/mw_nn.dir/im2col.cpp.o.d"
  "CMakeFiles/mw_nn.dir/model.cpp.o"
  "CMakeFiles/mw_nn.dir/model.cpp.o.d"
  "CMakeFiles/mw_nn.dir/model_builder.cpp.o"
  "CMakeFiles/mw_nn.dir/model_builder.cpp.o.d"
  "CMakeFiles/mw_nn.dir/pooling.cpp.o"
  "CMakeFiles/mw_nn.dir/pooling.cpp.o.d"
  "CMakeFiles/mw_nn.dir/serialize.cpp.o"
  "CMakeFiles/mw_nn.dir/serialize.cpp.o.d"
  "CMakeFiles/mw_nn.dir/trainer.cpp.o"
  "CMakeFiles/mw_nn.dir/trainer.cpp.o.d"
  "CMakeFiles/mw_nn.dir/weights.cpp.o"
  "CMakeFiles/mw_nn.dir/weights.cpp.o.d"
  "CMakeFiles/mw_nn.dir/zoo.cpp.o"
  "CMakeFiles/mw_nn.dir/zoo.cpp.o.d"
  "libmw_nn.a"
  "libmw_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mw_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
