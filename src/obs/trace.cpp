#include "obs/trace.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace mw::obs {
namespace {

/// The process-wide sink the MW_TRACE_* macros consult.
Atomic<TraceRecorder*> g_installed{nullptr};

/// Monotone recorder generation: a fresh TraceRecorder at a recycled address
/// must not hit a stale thread-local ring cache.
Atomic<std::uint64_t> g_next_generation{1};

/// Per-thread cache of "my ring inside the recorder of generation `gen`".
struct TlsRingCache {
    std::uint64_t gen = 0;
    void* ring = nullptr;
};

thread_local TlsRingCache t_ring_cache;

}  // namespace

const char* phase_name(Phase phase) noexcept {
    switch (phase) {
        case Phase::kSubmit: return "submit";
        case Phase::kAdmit: return "admit";
        case Phase::kQueue: return "queue";
        case Phase::kBatch: return "batch";
        case Phase::kDispatch: return "dispatch";
        case Phase::kExecute: return "execute";
        case Phase::kComplete: return "complete";
        case Phase::kFault: return "fault";
        case Phase::kRetry: return "retry";
        case Phase::kHedge: return "hedge";
        case Phase::kBreaker: return "breaker";
        case Phase::kRoute: return "route";
        case Phase::kSerialize: return "serialize";
        case Phase::kLink: return "link";
        case Phase::kRemoteExec: return "remote-exec";
    }
    return "unknown";
}

TraceRecorder::TraceRecorder(TraceConfig config)
    : config_(config),
      generation_(g_next_generation.fetch_add(
          1, std::memory_order_relaxed)) {  // relaxed: unique value only, no data published
    MW_CHECK(config_.ring_capacity > 0, "ring_capacity must be positive");
}

TraceRecorder::~TraceRecorder() {
    TraceRecorder* self = this;
    g_installed.compare_exchange_strong(self, nullptr, std::memory_order_acq_rel);
}

void TraceRecorder::install(TraceRecorder* recorder) noexcept {
    g_installed.store(recorder, std::memory_order_release);
}

TraceRecorder* TraceRecorder::installed() noexcept {
    return g_installed.load(std::memory_order_acquire);
}

TraceRecorder::Ring& TraceRecorder::ring_for_this_thread() noexcept {
    TlsRingCache& cache = t_ring_cache;
    if (cache.gen == generation_) return *static_cast<Ring*>(cache.ring);
    // First record from this thread (or a different recorder since): register
    // a fresh ring. The only locked path in the recorder.
    const MutexLock lock(mutex_);
    auto ring = std::make_unique<Ring>(config_.ring_capacity,
                                       static_cast<std::uint32_t>(rings_.size() + 1));
    Ring& ref = *ring;
    rings_.push_back(std::move(ring));
    cache.gen = generation_;
    cache.ring = &ref;
    return ref;
}

void TraceRecorder::record(Phase phase, std::uint64_t request_id, double t0, double t1,
                           const char* label) noexcept {
    Ring& ring = ring_for_this_thread();
    // Single writer per ring (the owning thread), so a relaxed read of our own
    // published count is exact.
    const std::size_t n = ring.published.load(std::memory_order_relaxed);  // relaxed: own ring, single writer
    if (n >= ring.slots.size()) {
        ring.dropped.fetch_add(1, std::memory_order_relaxed);  // relaxed: monotonic stat
        return;
    }
    Span& span = ring.slots[n];
    MW_MC_RACE_WRITE(&span, "TraceRecorder ring slot (record)");
    span.phase = phase;
    span.tid = ring.tid;
    span.request_id = request_id;
    span.t0 = t0;
    span.t1 = t1;
    span.set_label(label);
    // Publish: slots below `published` are immutable from here on, which is
    // what lets snapshot() read them without synchronising with writers.
    ring.published.store(n + 1, std::memory_order_release);
}

std::vector<Span> TraceRecorder::snapshot() const {
    std::vector<Span> out;
    {
        const MutexLock lock(mutex_);
        for (const auto& ring : rings_) {
            const std::size_t n = ring->published.load(std::memory_order_acquire);
            for (std::size_t i = 0; i < n; ++i) {
                MW_MC_RACE_READ(&ring->slots[i], "TraceRecorder ring slot (snapshot)");
            }
            out.insert(out.end(), ring->slots.begin(),
                       ring->slots.begin() + static_cast<std::ptrdiff_t>(n));
        }
    }
    std::sort(out.begin(), out.end(),
              [](const Span& a, const Span& b) { return a.t0 < b.t0; });
    return out;
}

std::size_t TraceRecorder::dropped() const {
    const MutexLock lock(mutex_);
    std::size_t total = 0;
    for (const auto& ring : rings_) {
        total += ring->dropped.load(std::memory_order_relaxed);  // relaxed: monotonic stat
    }
    return total;
}

std::size_t TraceRecorder::thread_count() const {
    const MutexLock lock(mutex_);
    return rings_.size();
}

}  // namespace mw::obs
