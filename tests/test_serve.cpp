// mw::serve unit + integration suite: queue semantics, admission/backpressure
// policies, dynamic batching, SLO shedding, and the Server end-to-end (all
// deterministic via ManualClock except the concurrent-submitter test, which
// doubles as TSan coverage under the `tsan` preset).
#include <gtest/gtest.h>

#include <cmath>
#include <future>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "common/timer.hpp"
#include "common/units.hpp"
#include "ml/random_forest.hpp"
#include "nn/zoo.hpp"
#include "sched/scheduler.hpp"
#include "sched/scheduler_dataset.hpp"
#include "serve/server.hpp"
#include "workload/stream.hpp"

namespace {

using namespace mw;
using namespace mw::serve;

Request make_request(std::uint64_t id, const std::string& model, std::size_t samples,
                     sched::Policy policy = sched::Policy::kMaxThroughput,
                     double slo_s = 0.0, double arrival_s = 0.0) {
    Request r;
    r.id = id;
    r.model_name = model;
    r.samples = samples;
    r.policy = policy;
    r.payload = Tensor(Shape{samples, 4});
    r.slo_s = slo_s;
    r.arrival_s = arrival_s;
    return r;
}

// ---------------------------------------------------------------------------
// RequestQueue
// ---------------------------------------------------------------------------

TEST(RequestQueue, BoundedPushAndFifoPop) {
    RequestQueue queue(2);
    Request a = make_request(1, "m", 1);
    Request b = make_request(2, "m", 1);
    Request c = make_request(3, "m", 1);
    EXPECT_TRUE(queue.try_push(a));
    EXPECT_TRUE(queue.try_push(b));
    EXPECT_FALSE(queue.try_push(c)) << "full queue must refuse";
    EXPECT_EQ(c.id, 3U) << "failed push leaves the request intact";
    EXPECT_EQ(queue.size(), 2U);

    EXPECT_EQ(queue.pop(0.0)->id, 1U);
    EXPECT_EQ(queue.pop(0.0)->id, 2U);
    EXPECT_FALSE(queue.pop(0.0).has_value());
}

TEST(RequestQueue, RoundRobinAcrossLanes) {
    RequestQueue queue(8);
    Request t1 = make_request(1, "m", 1, sched::Policy::kMaxThroughput);
    Request t2 = make_request(2, "m", 1, sched::Policy::kMaxThroughput);
    Request l1 = make_request(3, "m", 1, sched::Policy::kMinLatency);
    Request e1 = make_request(4, "m", 1, sched::Policy::kMinEnergy);
    ASSERT_TRUE(queue.try_push(t1) && queue.try_push(t2) && queue.try_push(l1) &&
                queue.try_push(e1));
    EXPECT_EQ(queue.lane_size(sched::Policy::kMaxThroughput), 2U);

    std::map<std::uint64_t, bool> seen;
    std::vector<sched::Policy> order;
    for (int i = 0; i < 4; ++i) {
        auto r = queue.pop(0.0);
        ASSERT_TRUE(r.has_value());
        seen[r->id] = true;
        order.push_back(r->policy);
    }
    EXPECT_EQ(seen.size(), 4U);
    // One lane must not be drained back-to-back while others hold requests:
    // the first three pops cover all three policies (round-robin fairness).
    EXPECT_NE(order[0], order[1]);
    EXPECT_NE(order[1], order[2]);
    EXPECT_NE(order[0], order[2]);
}

TEST(RequestQueue, PopMatchingCoalescesSameModelOnly) {
    RequestQueue queue(8);
    Request a = make_request(1, "alpha", 2);
    Request b = make_request(2, "beta", 2);
    Request c = make_request(3, "alpha", 2);
    Request d = make_request(4, "alpha", 100);
    ASSERT_TRUE(queue.try_push(a) && queue.try_push(b) && queue.try_push(c) &&
                queue.try_push(d));

    // Only "alpha" with sample budget 10: ids 1 and 3 fit, 4 (100 samples)
    // does not, 2 is another model.
    auto mates = queue.pop_matching("alpha", sched::Policy::kMaxThroughput, 10, 10);
    ASSERT_EQ(mates.size(), 2U);
    EXPECT_EQ(mates[0].id, 1U);
    EXPECT_EQ(mates[1].id, 3U);
    EXPECT_EQ(queue.size(), 2U);
}

TEST(RequestQueue, EvictOldestPicksGloballyOldest) {
    RequestQueue queue(8);
    Request a = make_request(1, "m", 1, sched::Policy::kMaxThroughput, 0.0, /*arrival=*/5.0);
    Request b = make_request(2, "m", 1, sched::Policy::kMinLatency, 0.0, /*arrival=*/1.0);
    ASSERT_TRUE(queue.try_push(a) && queue.try_push(b));
    auto victim = queue.evict_oldest();
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->id, 2U) << "the earliest arrival across lanes is evicted";
}

TEST(RequestQueue, RemoveIfAndDrain) {
    RequestQueue queue(8);
    for (std::uint64_t i = 1; i <= 5; ++i) {
        Request r = make_request(i, "m", 1);
        ASSERT_TRUE(queue.try_push(r));
    }
    auto even = queue.remove_if([](const Request& r) { return r.id % 2 == 0; });
    EXPECT_EQ(even.size(), 2U);
    EXPECT_EQ(queue.size(), 3U);
    auto rest = queue.drain();
    EXPECT_EQ(rest.size(), 3U);
    EXPECT_TRUE(queue.empty());
}

TEST(RequestQueue, EvictOldestReanchorsRoundRobinCursor) {
    RequestQueue queue(8);
    // Occupy all three lanes, then advance the round-robin cursor onto the
    // kMinLatency lane by popping once (kMaxThroughput goes first).
    Request t1 = make_request(1, "m", 1, sched::Policy::kMaxThroughput, 0.0, 2.0);
    Request l1 = make_request(2, "m", 1, sched::Policy::kMinLatency, 0.0, 1.0);
    Request e1 = make_request(3, "m", 1, sched::Policy::kMinEnergy, 0.0, 3.0);
    ASSERT_TRUE(queue.try_push(t1) && queue.try_push(l1) && queue.try_push(e1));
    ASSERT_EQ(queue.pop(0.0)->id, 1U);

    // Evicting the globally oldest (l1) empties the cursor's lane; the
    // cursor must re-anchor onto the next non-empty lane instead of keeping
    // the emptied lane's turn reserved.
    ASSERT_EQ(queue.evict_oldest()->id, 2U);
    Request l2 = make_request(4, "m", 1, sched::Policy::kMinLatency, 0.0, 4.0);
    ASSERT_TRUE(queue.try_push(l2));
    // Regression (pre-fix): the stale cursor handed the freshly-pushed l2
    // the next turn ahead of e1, which had been waiting longer.
    EXPECT_EQ(queue.pop(0.0)->id, 3U);
    EXPECT_EQ(queue.pop(0.0)->id, 4U);
}

TEST(RequestQueue, RemoveIfReanchorsRoundRobinCursor) {
    RequestQueue queue(8);
    Request t1 = make_request(1, "m", 1, sched::Policy::kMaxThroughput);
    Request l1 = make_request(2, "m", 1, sched::Policy::kMinLatency);
    Request e1 = make_request(3, "m", 1, sched::Policy::kMinEnergy);
    ASSERT_TRUE(queue.try_push(t1) && queue.try_push(l1) && queue.try_push(e1));
    ASSERT_EQ(queue.pop(0.0)->id, 1U);  // cursor now on the kMinLatency lane

    // Same audit as evict_oldest: remove_if that empties the cursor's lane
    // must re-anchor the cursor (deadline shedding uses this path).
    auto removed = queue.remove_if(
        [](const Request& r) { return r.policy == sched::Policy::kMinLatency; });
    ASSERT_EQ(removed.size(), 1U);
    Request l2 = make_request(4, "m", 1, sched::Policy::kMinLatency);
    ASSERT_TRUE(queue.try_push(l2));
    EXPECT_EQ(queue.pop(0.0)->id, 3U) << "the waiting lane goes before the refilled one";
    EXPECT_EQ(queue.pop(0.0)->id, 4U);
}

TEST(RequestQueue, CloseRefusesPushesButDrainsPops) {
    RequestQueue queue(4);
    Request a = make_request(1, "m", 1);
    ASSERT_TRUE(queue.try_push(a));
    queue.close();
    EXPECT_TRUE(queue.closed());
    Request b = make_request(2, "m", 1);
    EXPECT_FALSE(queue.try_push(b));
    EXPECT_EQ(queue.pop(0.0)->id, 1U) << "closed queues still drain";
    EXPECT_FALSE(queue.pop(5.0).has_value()) << "closed+empty returns immediately";
}

// ---------------------------------------------------------------------------
// LatencyHistogram
// ---------------------------------------------------------------------------

TEST(LatencyHistogram, EmptyHistogramPercentileIsNaN) {
    // 0.0 looked like a real (excellent!) latency in every report; NaN is
    // unambiguous "no data", and the renderers print it as a dash.
    LatencyHistogram hist;
    EXPECT_TRUE(std::isnan(hist.percentile(50.0)));
    EXPECT_TRUE(std::isnan(hist.percentile(99.0)));
    EXPECT_EQ(format_duration(hist.percentile(50.0)), "-");
}

TEST(LatencyHistogram, PercentilesTrackLogBuckets) {
    LatencyHistogram hist;
    for (int i = 1; i <= 1000; ++i) hist.add(static_cast<double>(i) * 1e-3);
    EXPECT_EQ(hist.count(), 1000U);
    const double p50 = hist.percentile(50.0);
    const double p95 = hist.percentile(95.0);
    const double p99 = hist.percentile(99.0);
    // Exact values are 0.5 / 0.95 / 0.99 s; buckets are ~12% wide.
    EXPECT_NEAR(p50, 0.5, 0.5 * 0.15);
    EXPECT_NEAR(p95, 0.95, 0.95 * 0.15);
    EXPECT_NEAR(p99, 0.99, 0.99 * 0.15);
    EXPECT_LE(p50, p95);
    EXPECT_LE(p95, p99);
}

// ---------------------------------------------------------------------------
// AdmissionController
// ---------------------------------------------------------------------------

struct AdmissionWorld {
    RequestQueue queue;
    ServerStats stats;
    AdmissionController admission;

    AdmissionWorld(BackpressurePolicy policy, std::size_t capacity,
                   double default_slo = 0.0)
        : queue(capacity),
          admission({.policy = policy, .default_slo_s = default_slo}, queue, stats) {}
};

TEST(Admission, RejectNewestRefusesIncoming) {
    AdmissionWorld world(BackpressurePolicy::kRejectNewest, 2);
    Request a = make_request(1, "m", 1);
    Request b = make_request(2, "m", 1);
    Request c = make_request(3, "m", 1);
    auto future_c = c.promise.get_future();
    EXPECT_TRUE(world.admission.admit(std::move(a), 0.0));
    EXPECT_TRUE(world.admission.admit(std::move(b), 0.0));
    EXPECT_FALSE(world.admission.admit(std::move(c), 0.0));
    EXPECT_EQ(future_c.get().status, RequestStatus::kRejectedFull);
    const auto t = world.stats.snapshot().totals();
    EXPECT_EQ(t.submitted, 3U);
    EXPECT_EQ(t.admitted, 2U);
    EXPECT_EQ(t.rejected_full, 1U);
}

TEST(Admission, RejectOldestEvictsAndAdmits) {
    AdmissionWorld world(BackpressurePolicy::kRejectOldest, 2);
    Request a = make_request(1, "m", 1);
    Request b = make_request(2, "m", 1);
    Request c = make_request(3, "m", 1);
    auto future_a = a.promise.get_future();
    EXPECT_TRUE(world.admission.admit(std::move(a), 0.0));
    EXPECT_TRUE(world.admission.admit(std::move(b), 1.0));
    EXPECT_TRUE(world.admission.admit(std::move(c), 2.0)) << "newcomer displaces oldest";
    EXPECT_EQ(future_a.get().status, RequestStatus::kEvicted);
    EXPECT_EQ(world.queue.size(), 2U);
    EXPECT_EQ(world.stats.snapshot().totals().evicted, 1U);
}

TEST(Admission, DeadlineShedDropsExpiredQueueEntries) {
    AdmissionWorld world(BackpressurePolicy::kDeadlineShed, 2);
    Request a = make_request(1, "m", 1, sched::Policy::kMaxThroughput, /*slo=*/1.0);
    Request b = make_request(2, "m", 1, sched::Policy::kMaxThroughput, /*slo=*/100.0);
    Request c = make_request(3, "m", 1);
    auto future_a = a.promise.get_future();
    EXPECT_TRUE(world.admission.admit(std::move(a), 0.0));
    EXPECT_TRUE(world.admission.admit(std::move(b), 0.0));
    // By t=2 request 1's 1 s SLO is blown; it is shed to make room.
    EXPECT_TRUE(world.admission.admit(std::move(c), 2.0));
    EXPECT_EQ(future_a.get().status, RequestStatus::kShedDeadline);
    EXPECT_EQ(world.queue.size(), 2U);
    EXPECT_EQ(world.stats.snapshot().totals().shed, 1U);
}

TEST(Admission, DeadlineShedUsesExecuteEstimator) {
    AdmissionWorld world(BackpressurePolicy::kDeadlineShed, 8);
    world.admission.observe_execute("slow-model", 5.0);
    EXPECT_GT(world.admission.estimated_execute_s("slow-model"), 4.0);

    // SLO 3 s < estimated 5 s execute: hopeless on arrival, shed immediately.
    Request r = make_request(1, "slow-model", 1, sched::Policy::kMinLatency, /*slo=*/3.0);
    auto future = r.promise.get_future();
    EXPECT_FALSE(world.admission.admit(std::move(r), 0.0));
    EXPECT_EQ(future.get().status, RequestStatus::kShedDeadline);

    // No SLO: never shed regardless of the estimator.
    Request relaxed = make_request(2, "slow-model", 1);
    EXPECT_TRUE(world.admission.admit(std::move(relaxed), 0.0));
}

TEST(Admission, ColdModelEstimateIsPriorNotZero) {
    AdmissionWorld world(BackpressurePolicy::kDeadlineShed, 8);
    EXPECT_GT(world.admission.estimated_execute_s("never-seen"), 0.0);
    EXPECT_NEAR(world.admission.estimated_execute_s("never-seen"),
                world.admission.config().cold_execute_prior_s, 1e-15);
}

TEST(Admission, DeadlineShedShedsColdModelOnArrival) {
    // Regression: estimated_execute_s() returned 0.0 for a model with no
    // observations, so kDeadlineShed admitted every cold-model request no
    // matter how tight its SLO — "hopeless on arrival" only worked after the
    // EWMA warmed up.
    AdmissionWorld world(BackpressurePolicy::kDeadlineShed, 8);
    Request r = make_request(1, "cold-model", 1, sched::Policy::kMinLatency,
                             /*slo=*/1e-4);  // below the 1e-3 default prior
    auto future = r.promise.get_future();
    EXPECT_FALSE(world.admission.admit(std::move(r), 0.0));
    EXPECT_EQ(future.get().status, RequestStatus::kShedDeadline);
    EXPECT_EQ(world.stats.snapshot().totals().shed, 1U);

    // A feasible SLO (above the prior) is still admitted.
    Request ok = make_request(2, "cold-model", 1, sched::Policy::kMinLatency,
                              /*slo=*/1.0);
    EXPECT_TRUE(world.admission.admit(std::move(ok), 0.0));
}

TEST(Admission, ColdPriorFnSeedsPerModelEstimates) {
    RequestQueue queue(8);
    ServerStats stats;
    AdmissionConfig config;
    config.policy = BackpressurePolicy::kDeadlineShed;
    config.cold_prior_fn = [](const std::string& model) {
        return model == "heavy" ? 10.0 : -1.0;  // decline everything else
    };
    AdmissionController admission(config, queue, stats);
    EXPECT_NEAR(admission.estimated_execute_s("heavy"), 10.0, 1e-12);
    EXPECT_NEAR(admission.estimated_execute_s("light"),
                config.cold_execute_prior_s, 1e-15);
    // Real observations override any prior.
    admission.observe_execute("heavy", 0.25);
    EXPECT_NEAR(admission.estimated_execute_s("heavy"), 0.25, 1e-12);
}

// ---------------------------------------------------------------------------
// Server end-to-end (real scheduler + devices, ManualClock)
// ---------------------------------------------------------------------------

struct ServeWorld {
    device::DeviceRegistry registry = device::DeviceRegistry::standard_testbed();
    sched::Dispatcher dispatcher{registry};
    std::optional<sched::OnlineScheduler> scheduler;
    ManualClock clock;

    ServeWorld() {
        dispatcher.register_model(nn::zoo::simple(), 7);
        dispatcher.deploy_all();
        const auto dataset = sched::build_scheduler_dataset(
            registry, {nn::zoo::simple()}, {.batches = {1, 4, 16}});
        sched::DevicePredictor predictor(
            std::make_unique<ml::RandomForest>(ml::ForestConfig{.n_estimators = 8, .seed = 3}),
            dataset.device_names);
        predictor.fit(dataset);
        scheduler.emplace(dispatcher, std::move(predictor), dataset,
                          sched::SchedulerConfig{.explore_probability = 0.0});
        for (device::Device* dev : registry.devices()) dev->reset_timeline();
    }

    InferenceRequest request(Tensor payload,
                             sched::Policy policy = sched::Policy::kMaxThroughput,
                             double slo_s = 0.0) {
        return InferenceRequest{"simple", std::move(payload), policy, slo_s};
    }
};

TEST(Server, CompletesRequestsWithCorrectOutputs) {
    ServeWorld world;
    ServerConfig config;
    config.workers = 2;
    config.batching.enabled = false;
    Server server(*world.scheduler, world.dispatcher, world.clock, config);

    workload::SyntheticSource source(99);
    std::vector<Tensor> payloads;
    std::vector<std::future<Response>> futures;
    for (int i = 0; i < 16; ++i) {
        payloads.push_back(source.next_batch(3, 4));
        futures.push_back(server.submit(world.request(Tensor(payloads.back()))));
    }
    for (int i = 0; i < 16; ++i) {
        Response response = futures[static_cast<std::size_t>(i)].get();
        ASSERT_EQ(response.status, RequestStatus::kCompleted) << response.error;
        EXPECT_EQ(response.coalesced, 1U);
        // Outputs must equal a direct forward pass of the same payload.
        Tensor shaped(world.dispatcher.model("simple").input_shape(3));
        std::copy_n(payloads[static_cast<std::size_t>(i)].data(), shaped.numel(),
                    shaped.data());
        const Tensor reference = world.dispatcher.model("simple").forward(shaped);
        EXPECT_EQ(response.outputs.max_abs_diff(reference), 0.0F);
    }
    server.stop();
    const auto totals = server.stats().totals();
    EXPECT_EQ(totals.submitted, 16U);
    EXPECT_EQ(totals.completed, 16U);
    EXPECT_EQ(totals.samples, 48.0);
}

TEST(Server, DynamicBatchingCoalescesSameModelRequests) {
    ServeWorld world;
    ServerConfig config;
    config.workers = 1;
    config.batching = {.enabled = true, .max_requests = 4, .max_samples = 1024,
                       .max_wait_s = 3600.0};
    Server server(*world.scheduler, world.dispatcher, world.clock, config);

    workload::SyntheticSource source(5);
    std::vector<Tensor> payloads;
    std::vector<std::future<Response>> futures;
    for (int i = 0; i < 4; ++i) {
        payloads.push_back(source.next_batch(2, 4));
        futures.push_back(server.submit(world.request(Tensor(payloads.back()))));
    }
    // The ManualClock never reaches the max-wait deadline, so the single
    // worker must assemble the full 4-request batch before executing.
    for (int i = 0; i < 4; ++i) {
        Response response = futures[static_cast<std::size_t>(i)].get();
        ASSERT_EQ(response.status, RequestStatus::kCompleted) << response.error;
        EXPECT_EQ(response.coalesced, 4U);
        EXPECT_EQ(response.measurement.batch, 8U) << "4 requests x 2 samples";
        // Slicing must hand every member its own rows.
        Tensor shaped(world.dispatcher.model("simple").input_shape(2));
        std::copy_n(payloads[static_cast<std::size_t>(i)].data(), shaped.numel(),
                    shaped.data());
        const Tensor reference = world.dispatcher.model("simple").forward(shaped);
        EXPECT_EQ(response.outputs.max_abs_diff(reference), 0.0F);
    }
    const auto totals = server.stats().totals();
    EXPECT_EQ(totals.batches_executed, 1U);
    EXPECT_EQ(totals.coalesced_requests, 4U);
}

TEST(Server, ManualClockFlushesPartialBatch) {
    ServeWorld world;
    ServerConfig config;
    config.workers = 1;
    config.batching = {.enabled = true, .max_requests = 4, .max_samples = 1024,
                       .max_wait_s = 50.0};
    Server server(*world.scheduler, world.dispatcher, world.clock, config);

    workload::SyntheticSource source(6);
    auto f1 = server.submit(world.request(source.next_batch(2, 4)));
    auto f2 = server.submit(world.request(source.next_batch(2, 4)));
    // Wait until the aggregator holds both requests: its max-wait deadline is
    // anchored at the leader pop, which must happen before the clock jumps
    // (otherwise the deadline lands at t=51+50 and the flush never comes).
    while (server.queue_depth() != 0) sleep_for_seconds(0.001);
    // Only 2 of 4 slots filled; advancing past max_wait flushes the batch.
    world.clock.advance(51.0);
    EXPECT_EQ(f1.get().coalesced, 2U);
    EXPECT_EQ(f2.get().coalesced, 2U);
}

TEST(Server, FullQueueShedsInsteadOfBlocking) {
    ServeWorld world;
    ServerConfig config;
    config.workers = 1;
    config.queue_capacity = 4;
    config.batching.enabled = false;
    config.start_on_construction = false;  // stage the overload deterministically
    Server server(*world.scheduler, world.dispatcher, world.clock, config);

    workload::SyntheticSource source(7);
    std::vector<std::future<Response>> futures;
    for (int i = 0; i < 6; ++i) {
        futures.push_back(server.submit(world.request(source.next_batch(1, 4))));
    }
    // Submissions 5 and 6 found the queue full: already resolved, no block.
    EXPECT_EQ(futures[4].get().status, RequestStatus::kRejectedFull);
    EXPECT_EQ(futures[5].get().status, RequestStatus::kRejectedFull);

    server.start();
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(futures[static_cast<std::size_t>(i)].get().status,
                  RequestStatus::kCompleted);
    }
    server.stop();
    const auto totals = server.stats().totals();
    EXPECT_EQ(totals.submitted, 6U);
    EXPECT_EQ(totals.completed, 4U);
    EXPECT_EQ(totals.rejected_full, 2U);
}

TEST(Server, StopWithoutDrainCompletesPendingAsShutdown) {
    ServeWorld world;
    ServerConfig config;
    config.workers = 1;
    config.drain_on_stop = false;
    config.start_on_construction = false;
    Server server(*world.scheduler, world.dispatcher, world.clock, config);

    workload::SyntheticSource source(8);
    auto pending = server.submit(world.request(source.next_batch(1, 4)));
    server.stop();
    EXPECT_EQ(pending.get().status, RequestStatus::kShutdown);

    // Submissions after stop() resolve immediately as shutdown.
    auto late = server.submit(world.request(source.next_batch(1, 4)));
    EXPECT_EQ(late.get().status, RequestStatus::kShutdown);
}

TEST(Server, ConcurrentSubmittersAllResolve) {
    ServeWorld world;
    WallClock wall;
    ServerConfig config;
    config.workers = 3;
    config.queue_capacity = 64;
    config.admission.policy = BackpressurePolicy::kRejectOldest;
    config.batching = {.enabled = true, .max_requests = 8, .max_samples = 4096,
                       .max_wait_s = 0.001};
    Server server(*world.scheduler, world.dispatcher, wall, config);

    constexpr std::size_t kClients = 4;
    constexpr std::size_t kPerClient = 40;
    workload::SyntheticSource source(11);
    ThreadPool clients(kClients);
    std::vector<std::future<void>> client_futures;
    std::array<std::atomic<std::size_t>, 2> outcome_counts{};  // [completed, other]
    for (std::size_t c = 0; c < kClients; ++c) {
        client_futures.push_back(clients.submit([&, c] {
            for (std::size_t i = 0; i < kPerClient; ++i) {
                const auto policy = static_cast<sched::Policy>((c + i) % kPolicyLanes);
                auto future = server.submit(
                    InferenceRequest{"simple", source.next_batch(2, 4), policy});
                const Response response = future.get();
                outcome_counts[response.ok() ? 0 : 1].fetch_add(
                    1, std::memory_order_relaxed);
            }
        }));
    }
    for (auto& f : client_futures) f.get();
    server.stop();

    const auto totals = server.stats().totals();
    EXPECT_EQ(totals.submitted, kClients * kPerClient);
    EXPECT_EQ(outcome_counts[0].load(), totals.completed);
    EXPECT_EQ(totals.completed + totals.rejected_full + totals.evicted + totals.shed +
                  totals.failed + totals.shutdown,
              kClients * kPerClient);
    EXPECT_EQ(totals.failed, 0U);
    EXPECT_GT(totals.completed, 0U);
}

}  // namespace
