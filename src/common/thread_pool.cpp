#include "common/thread_pool.hpp"

#include <algorithm>
#include <exception>

#include "common/error.hpp"

namespace mw {

ThreadPool::ThreadPool(std::size_t threads) {
    if (threads == 0) threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

ThreadPool::~ThreadPool() {
    {
        const MutexLock lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
    auto packaged = std::make_shared<std::packaged_task<void()>>(std::move(task));
    std::future<void> future = packaged->get_future();
    enqueue([packaged] { (*packaged)(); });
    return future;
}

void ThreadPool::enqueue(std::function<void()> task) {
    {
        const MutexLock lock(mutex_);
        MW_CHECK(!stopping_, "submit on a stopping ThreadPool");
        queue_.push_back(std::move(task));
    }
    cv_.notify_one();
}

namespace {

/// Shared state of one parallel_for invocation. Chunks are claimed with an
/// atomic counter by pool workers *and* by the calling thread, so the loop
/// always makes progress even when every worker is occupied (the nested
/// parallel_for case) — the caller simply runs the remaining chunks itself.
struct LoopState {
    std::function<void(std::size_t)> fn;  // owned copy: helper tasks may start
                                          // after the caller already returned
    std::size_t begin = 0;
    std::size_t end = 0;
    std::size_t grain = 1;
    std::size_t nchunks = 0;
    Atomic<std::size_t> next_chunk{0};
    Atomic<std::size_t> chunks_done{0};
    Mutex mutex{LockRank::kPoolLoop};
    CondVar done_cv;
    std::exception_ptr first_error MW_GUARDED_BY(mutex);
};

/// Claim and run chunks until none remain. Returns after the last claimable
/// chunk; completion is tracked by `chunks_done`, not by who ran what.
void run_chunks(const std::shared_ptr<LoopState>& state) {
    for (;;) {
        const std::size_t c = state->next_chunk.fetch_add(
            1, std::memory_order_relaxed);  // relaxed: chunk claim needs uniqueness only
        if (c >= state->nchunks) return;
        const std::size_t lo = state->begin + c * state->grain;
        const std::size_t hi = std::min(lo + state->grain, state->end);
        try {
            for (std::size_t i = lo; i < hi; ++i) state->fn(i);
        } catch (...) {
            const MutexLock lock(state->mutex);
            if (!state->first_error) state->first_error = std::current_exception();
        }
        if (state->chunks_done.fetch_add(1, std::memory_order_acq_rel) + 1 == state->nchunks) {
            const MutexLock lock(state->mutex);
            state->done_cv.notify_all();
        }
    }
}

}  // namespace

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn, std::size_t grain) {
    if (begin >= end) return;
    const std::size_t total = end - begin;
    if (grain == 0) {
        const std::size_t target_chunks = std::max<std::size_t>(1, size() * 4);
        grain = std::max<std::size_t>(1, total / target_chunks);
    }
    // Small ranges: run inline, avoid synchronization entirely.
    if (total <= grain || size() == 1) {
        for (std::size_t i = begin; i < end; ++i) fn(i);
        return;
    }
    auto state = std::make_shared<LoopState>();
    state->fn = fn;
    state->begin = begin;
    state->end = end;
    state->grain = grain;
    state->nchunks = (total + grain - 1) / grain;

    // The caller claims chunks too, so at most nchunks - 1 helpers can ever
    // find work; late-starting helpers see no chunks left and return at once.
    const std::size_t helpers = std::min(size(), state->nchunks - 1);
    for (std::size_t i = 0; i < helpers; ++i) {
        enqueue([state] { run_chunks(state); });
    }
    run_chunks(state);

    std::exception_ptr first_error;
    {
        MutexLock lock(state->mutex);
        state->done_cv.wait(lock, [&] {
            return state->chunks_done.load(std::memory_order_acquire) == state->nchunks;
        });
        first_error = std::move(state->first_error);
    }
    // Rethrow from a local with the lock released: the exception (and its
    // message storage) must not stay owned by LoopState at throw time — a
    // late-starting helper drops the last shared_ptr on a pool thread, and
    // destroying the stored exception there races the caller still reading
    // what() of the in-flight rethrow.
    if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& ThreadPool::global() {
    static ThreadPool pool;
    return pool;
}

void ThreadPool::worker_loop() {
    for (;;) {
        std::function<void()> task;
        {
            MutexLock lock(mutex_);
            cv_.wait(lock, [this] {
                mutex_.assert_held();
                return stopping_ || !queue_.empty();
            });
            if (stopping_ && queue_.empty()) return;
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
    }
}

}  // namespace mw
