#include "graph/verify.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace mw::graph {
namespace {

constexpr std::size_t kUnscheduled = static_cast<std::size_t>(-1);
constexpr double kGiga = 1e9;

std::string step_desc(const Schedule& schedule, std::size_t index) {
    std::ostringstream os;
    const Step& step = schedule.steps[index];
    os << "step " << index;
    if (step.device < schedule.devices.size()) {
        os << " (" << schedule.devices[step.device].name << ")";
    }
    return os.str();
}

/// The memory traffic of one step, recomputed from the graph and placement
/// alone. Distinct tensors pulled in before computing and pushed out
/// afterwards, split by which tier they cross: same-device cross-step
/// tensors round-trip the device's own slow tier (`local`); cross-device
/// tensors, graph inputs and graph outputs cross the spill link (`link`).
struct StepTraffic {
    double load_link_bytes = 0.0;
    double load_local_bytes = 0.0;
    double store_link_bytes = 0.0;
    double store_local_bytes = 0.0;
};

StepTraffic step_traffic(const Graph& graph, const Schedule& schedule, const Step& step,
                         const std::vector<std::size_t>& step_of,
                         const std::vector<std::vector<NodeId>>& consumers,
                         std::size_t step_index) {
    StepTraffic traffic;
    std::unordered_set<NodeId> loaded;
    for (const NodeId v : step.nodes) {
        traffic.load_link_bytes += graph.node(v).external_in_bytes;  // graph inputs
        for (const NodeId u : graph.node(v).inputs) {
            if (step_of[u] != step_index && loaded.insert(u).second) {
                const bool same_device = schedule.steps[step_of[u]].device == step.device;
                (same_device ? traffic.load_local_bytes : traffic.load_link_bytes) +=
                    graph.node(u).out_bytes;
            }
        }
    }
    for (const NodeId v : step.nodes) {
        bool stored = consumers[v].empty();  // graph output -> back to the host
        bool crosses_device = consumers[v].empty();
        for (const NodeId w : consumers[v]) {
            if (step_of[w] == step_index) continue;
            stored = true;
            if (schedule.steps[step_of[w]].device != step.device) crosses_device = true;
        }
        if (stored) {
            (crosses_device ? traffic.store_link_bytes : traffic.store_local_bytes) +=
                graph.node(v).out_bytes;
        }
    }
    return traffic;
}

/// Peak fast-memory residency of one step under the execution contract:
/// all external inputs resident for the whole step, fused intermediates
/// live from production until their last in-group consumer, plus the
/// running node's output.
double peak_residency(const Graph& graph, const Step& step,
                      const std::vector<std::size_t>& step_of,
                      const std::vector<std::vector<NodeId>>& consumers,
                      std::size_t step_index) {
    double external_in = 0.0;
    std::unordered_set<NodeId> loaded;
    std::unordered_map<NodeId, std::size_t> position;
    for (std::size_t i = 0; i < step.nodes.size(); ++i) position[step.nodes[i]] = i;
    for (const NodeId v : step.nodes) {
        external_in += graph.node(v).external_in_bytes;
        for (const NodeId u : graph.node(v).inputs) {
            if (step_of[u] != step_index && loaded.insert(u).second) {
                external_in += graph.node(u).out_bytes;
            }
        }
    }

    // last_use[j] = last in-group position consuming step.nodes[j]'s output.
    std::vector<std::size_t> last_use(step.nodes.size(), 0);
    std::vector<bool> ephemeral(step.nodes.size(), false);
    for (std::size_t j = 0; j < step.nodes.size(); ++j) {
        for (const NodeId w : consumers[step.nodes[j]]) {
            const auto it = position.find(w);
            if (it != position.end()) {
                ephemeral[j] = true;
                last_use[j] = std::max(last_use[j], it->second);
            }
        }
    }

    double peak = 0.0;
    for (std::size_t i = 0; i < step.nodes.size(); ++i) {
        double live = 0.0;
        for (std::size_t j = 0; j < i; ++j) {
            if (ephemeral[j] && last_use[j] >= i) live += graph.node(step.nodes[j]).out_bytes;
        }
        peak = std::max(peak, external_in + live + graph.node(step.nodes[i]).out_bytes);
    }
    return peak;
}

}  // namespace

const char* violation_kind_name(ViolationKind kind) {
    switch (kind) {
        case ViolationKind::kMalformed: return "malformed";
        case ViolationKind::kCoverage: return "coverage";
        case ViolationKind::kPrecedence: return "precedence";
        case ViolationKind::kOverlap: return "overlap";
        case ViolationKind::kCapacity: return "capacity";
        case ViolationKind::kBandwidth: return "bandwidth";
    }
    return "unknown";
}

std::vector<Violation> verify_schedule(const Graph& graph, const Schedule& schedule,
                                       double rel_tol) {
    std::vector<Violation> out;
    const auto report = [&out](ViolationKind kind, const std::string& message) {
        out.push_back({kind, message});
    };

    // --- structural sanity -------------------------------------------------
    for (std::size_t s = 0; s < schedule.steps.size(); ++s) {
        const Step& step = schedule.steps[s];
        if (step.device >= schedule.devices.size()) {
            report(ViolationKind::kMalformed, "step " + std::to_string(s) +
                                                  " references device index " +
                                                  std::to_string(step.device) +
                                                  " out of range");
            return out;  // downstream checks would index out of bounds
        }
        if (step.nodes.empty()) {
            report(ViolationKind::kMalformed, step_desc(schedule, s) + " has no operators");
        }
        const double phases[] = {step.start_s, step.load_s, step.compute_s, step.store_s};
        for (const double phase : phases) {
            if (!std::isfinite(phase) || phase < 0.0) {
                report(ViolationKind::kMalformed,
                       step_desc(schedule, s) + " has a negative or non-finite time");
                break;
            }
        }
        for (const NodeId v : step.nodes) {
            if (v >= graph.size()) {
                report(ViolationKind::kMalformed, step_desc(schedule, s) +
                                                      " references node " + std::to_string(v) +
                                                      " outside the graph");
                return out;
            }
        }
    }

    // --- coverage: every operator exactly once -----------------------------
    std::vector<std::size_t> step_of(graph.size(), kUnscheduled);
    for (std::size_t s = 0; s < schedule.steps.size(); ++s) {
        for (const NodeId v : schedule.steps[s].nodes) {
            if (step_of[v] != kUnscheduled) {
                report(ViolationKind::kCoverage,
                       "node " + std::to_string(v) + " (`" + graph.node(v).name +
                           "`) scheduled twice: " + step_desc(schedule, step_of[v]) + " and " +
                           step_desc(schedule, s));
            } else {
                step_of[v] = s;
            }
        }
    }
    for (NodeId v = 0; v < graph.size(); ++v) {
        if (step_of[v] == kUnscheduled) {
            report(ViolationKind::kCoverage,
                   "node " + std::to_string(v) + " (`" + graph.node(v).name + "`) never scheduled");
        }
    }
    if (!out.empty() &&
        std::any_of(out.begin(), out.end(), [](const Violation& violation) {
            return violation.kind == ViolationKind::kCoverage ||
                   violation.kind == ViolationKind::kMalformed;
        })) {
        return out;  // timing/capacity replay needs full, unique coverage
    }

    const auto consumers = graph.consumers();
    const double abs_tol = 1e-12;

    // --- precedence --------------------------------------------------------
    for (NodeId v = 0; v < graph.size(); ++v) {
        for (const NodeId u : graph.node(v).inputs) {
            if (step_of[u] == step_of[v]) {
                // Within a step the listed order must respect the edge.
                const Step& step = schedule.steps[step_of[v]];
                const auto pos = [&step](NodeId id) {
                    return std::find(step.nodes.begin(), step.nodes.end(), id) -
                           step.nodes.begin();
                };
                if (pos(u) > pos(v)) {
                    report(ViolationKind::kPrecedence,
                           "edge " + std::to_string(u) + " -> " + std::to_string(v) +
                               " runs backwards inside " + step_desc(schedule, step_of[v]));
                }
                continue;
            }
            const Step& producer = schedule.steps[step_of[u]];
            const Step& consumer = schedule.steps[step_of[v]];
            if (consumer.start_s + abs_tol < producer.end_s()) {
                std::ostringstream os;
                os << "edge " << u << " -> " << v << ": " << step_desc(schedule, step_of[v])
                   << " starts at " << consumer.start_s << " before "
                   << step_desc(schedule, step_of[u]) << " ends at " << producer.end_s();
                report(ViolationKind::kPrecedence, os.str());
            }
        }
    }

    // --- per-device overlap ------------------------------------------------
    std::vector<std::vector<std::size_t>> by_device(schedule.devices.size());
    for (std::size_t s = 0; s < schedule.steps.size(); ++s) {
        by_device[schedule.steps[s].device].push_back(s);
    }
    for (auto& steps : by_device) {
        std::sort(steps.begin(), steps.end(), [&schedule](std::size_t a, std::size_t b) {
            return schedule.steps[a].start_s < schedule.steps[b].start_s;
        });
        for (std::size_t i = 1; i < steps.size(); ++i) {
            const Step& prev = schedule.steps[steps[i - 1]];
            const Step& cur = schedule.steps[steps[i]];
            if (cur.start_s + abs_tol < prev.end_s()) {
                std::ostringstream os;
                os << step_desc(schedule, steps[i]) << " starts at " << cur.start_s
                   << " while " << step_desc(schedule, steps[i - 1]) << " runs until "
                   << prev.end_s();
                report(ViolationKind::kOverlap, os.str());
            }
        }
    }

    // --- capacity + bandwidth ----------------------------------------------
    for (std::size_t s = 0; s < schedule.steps.size(); ++s) {
        const Step& step = schedule.steps[s];
        const MemorySpec& mem = schedule.devices[step.device];

        if (mem.scratchpad_bytes > 0.0) {
            const double peak = peak_residency(graph, step, step_of, consumers, s);
            if (peak > mem.scratchpad_bytes * (1.0 + rel_tol)) {
                std::ostringstream os;
                os << step_desc(schedule, s) << " peak residency " << peak
                   << " B exceeds scratchpad " << mem.scratchpad_bytes << " B";
                report(ViolationKind::kCapacity, os.str());
            }
        }

        const StepTraffic traffic = step_traffic(graph, schedule, step, step_of, consumers, s);
        const auto check_phase = [&](double link_bytes, double local_bytes, double phase_s,
                                     const char* phase) {
            if (link_bytes <= 0.0 && local_bytes <= 0.0) return;
            if (link_bytes > 0.0 && mem.link_gbps <= 0.0) {
                report(ViolationKind::kBandwidth,
                       step_desc(schedule, s) + std::string(" must ") + phase + " " +
                           std::to_string(link_bytes) +
                           " B across the spill link but its device has no link bandwidth");
                return;
            }
            if (local_bytes > 0.0 && mem.local_gbps <= 0.0) {
                report(ViolationKind::kBandwidth,
                       step_desc(schedule, s) + std::string(" must ") + phase + " " +
                           std::to_string(local_bytes) +
                           " B through its slow tier but the device has no local bandwidth");
                return;
            }
            double min_s = 0.0;
            if (link_bytes > 0.0) {
                min_s += mem.link_latency_s + link_bytes / (mem.link_gbps * kGiga);
            }
            if (local_bytes > 0.0) min_s += local_bytes / (mem.local_gbps * kGiga);
            if (phase_s < min_s * (1.0 - rel_tol) - abs_tol) {
                std::ostringstream os;
                os << step_desc(schedule, s) << " " << phase << " phase is " << phase_s
                   << " s but moving " << link_bytes << " link B + " << local_bytes
                   << " local B needs " << min_s << " s";
                report(ViolationKind::kBandwidth, os.str());
            }
        };
        check_phase(traffic.load_link_bytes, traffic.load_local_bytes, step.load_s, "load");
        check_phase(traffic.store_link_bytes, traffic.store_local_bytes, step.store_s, "store");
    }

    return out;
}

std::string format_violations(const std::vector<Violation>& violations) {
    std::ostringstream os;
    for (const Violation& violation : violations) {
        os << "[" << violation_kind_name(violation.kind) << "] " << violation.message << "\n";
    }
    return os.str();
}

}  // namespace mw::graph
