#!/usr/bin/env python3
"""Bench regression gate: compare freshly measured bench JSON against the
committed baselines and fail (exit 1) when sustained QPS dropped more than
the allowed fraction in ANY gated pair.

Only QPS regressions gate the build — queue wait, batch size, energy, and
the distributed scaling/kill ratios are printed for context but
machine-to-machine variance makes them too noisy to gate on. The QPS
threshold is generous (20% by default) for the same reason: the gate exists
to catch "someone serialized the hot path", not 2% jitter.

Usage:
  # one pair (legacy positional form)
  tools/bench-compare.py BASELINE.json CURRENT.json [--max-qps-drop 0.20]
  # several benches in one invocation, each gated independently
  tools/bench-compare.py --gate bench/baselines/BENCH_serving.json:serving.json \
                         --gate bench/baselines/BENCH_distributed.json:distributed.json
  tools/bench-compare.py --self-test

--self-test fabricates a 25% QPS regression from a synthetic baseline and a
distributed-shaped pair within tolerance, and verifies the gate fires on the
former and passes the latter — CI runs it before trusting the real gate.
"""

import argparse
import json
import sys
import tempfile


def load(path):
    with open(path) as f:
        data = json.load(f)
    if "sustained_qps" not in data:
        sys.exit(f"error: {path} has no sustained_qps field")
    return data


def fmt_delta(base, cur):
    if base == 0:
        return "n/a"
    return f"{(cur - base) / base * 100.0:+.1f}%"


def compare(baseline_path, current_path, max_qps_drop):
    base = load(baseline_path)
    cur = load(current_path)

    print(f"== {baseline_path} vs {current_path} ==")
    rows = [
        ("sustained_qps", "QPS"),
        ("queue_wait_p95_s", "s"),
        ("mean_batch", "req/batch"),
        ("energy_per_request_j", "J/req"),
        ("single_node_qps", "QPS"),
        ("scaling_8x", "x"),
        ("dag_speedup_membound", "x"),
        ("dag_speedup_computebound", "x"),
        ("crossover_intensity", "flop/B"),
    ]
    print(f"{'metric':24} {'baseline':>14} {'current':>14} {'delta':>8}")
    for key, unit in rows:
        if key not in base and key not in cur:
            continue
        b, c = base.get(key, 0.0), cur.get(key, 0.0)
        print(f"{key:24} {b:14.4g} {c:14.4g} {fmt_delta(b, c):>8}  ({unit})")
    for side, data in (("baseline", base), ("current", cur)):
        deg = data.get("degraded", {})
        if deg:
            ratio = deg.get("recovered_ratio", deg.get("killed_ratio", 0))
            print(f"degraded ({side}): healthy {deg.get('healthy_qps', 0):.0f}, "
                  f"killed {deg.get('killed_qps', 0):.0f}, "
                  f"ratio {ratio:.2f}")

    base_qps = base["sustained_qps"]
    cur_qps = cur["sustained_qps"]
    if base_qps <= 0:
        sys.exit("error: baseline sustained_qps is not positive")
    drop = (base_qps - cur_qps) / base_qps
    if drop > max_qps_drop:
        print(f"\nFAIL: sustained QPS dropped {drop * 100.0:.1f}% "
              f"(allowed: {max_qps_drop * 100.0:.0f}%)")
        return 1
    print(f"\nOK: sustained QPS within {max_qps_drop * 100.0:.0f}% of baseline "
          f"(drop: {max(drop, 0.0) * 100.0:.1f}%)")
    return 0


def compare_all(pairs, max_qps_drop):
    failures = 0
    for index, (baseline_path, current_path) in enumerate(pairs):
        if index:
            print()
        failures += compare(baseline_path, current_path, max_qps_drop)
    if len(pairs) > 1:
        print(f"\n{len(pairs) - failures}/{len(pairs)} gates passed")
    return 1 if failures else 0


def self_test(max_qps_drop):
    serving = {
        "sustained_qps": 100000.0,
        "queue_wait_p95_s": 0.002,
        "mean_batch": 20.0,
        "energy_per_request_j": 3e-5,
    }
    distributed = {
        "sustained_qps": 640000.0,
        "single_node_qps": 82000.0,
        "scaling_8x": 7.8,
        "degraded": {"healthy_qps": 640000.0, "killed_qps": 540000.0,
                     "killed_ratio": 0.84},
    }
    regressed = dict(serving, sustained_qps=serving["sustained_qps"] * 0.75)
    ok_serving = dict(serving, sustained_qps=serving["sustained_qps"] * 0.9)
    ok_distributed = dict(distributed,
                          sustained_qps=distributed["sustained_qps"] * 0.95)

    def run(case_pairs):
        files = []
        try:
            pairs = []
            for base, cur in case_pairs:
                pair = []
                for data in (base, cur):
                    f = tempfile.NamedTemporaryFile("w", suffix=".json",
                                                    delete=False)
                    json.dump(data, f)
                    f.close()
                    files.append(f.name)
                    pair.append(f.name)
                pairs.append(tuple(pair))
            return compare_all(pairs, max_qps_drop)
        finally:
            import os
            for name in files:
                os.unlink(name)

    print("== self-test: 25% regression must FAIL ==")
    if run([(serving, regressed)]) != 1:
        sys.exit("self-test FAILED: a 25% QPS regression passed the gate")
    print("\n== self-test: multi-gate with one regressing pair must FAIL ==")
    if run([(distributed, ok_distributed), (serving, regressed)]) != 1:
        sys.exit("self-test FAILED: a regressing pair slipped through "
                 "a multi-gate run")
    print("\n== self-test: serving 10% drop + distributed 5% drop must PASS ==")
    if run([(serving, ok_serving), (distributed, ok_distributed)]) != 0:
        sys.exit("self-test FAILED: in-tolerance drops tripped the 20% gate")
    print("\nself-test OK: the gate fires on a 25% regression (alone and "
          "among passing pairs) and passes in-tolerance drops")
    return 0


def parse_gate(spec):
    baseline, sep, current = spec.partition(":")
    if not sep or not baseline or not current:
        sys.exit(f"error: --gate expects BASELINE.json:CURRENT.json, got {spec!r}")
    return baseline, current


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", nargs="?", help="committed baseline JSON")
    parser.add_argument("current", nargs="?", help="freshly measured JSON")
    parser.add_argument("--gate", action="append", default=[],
                        metavar="BASELINE:CURRENT",
                        help="gate a baseline/current pair; repeatable")
    parser.add_argument("--max-qps-drop", type=float, default=0.20,
                        help="maximum allowed fractional QPS drop (default 0.20)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the gate fires on a synthetic regression")
    args = parser.parse_args()

    if args.self_test:
        sys.exit(self_test(args.max_qps_drop))
    pairs = [parse_gate(spec) for spec in args.gate]
    if args.baseline and args.current:
        pairs.insert(0, (args.baseline, args.current))
    elif args.baseline or args.current:
        parser.error("baseline and current must be given together")
    if not pairs:
        parser.error("give BASELINE CURRENT, --gate pairs, or --self-test")
    sys.exit(compare_all(pairs, args.max_qps_drop))


if __name__ == "__main__":
    main()
