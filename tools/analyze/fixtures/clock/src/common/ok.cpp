// Outside the confined tiers the same identifiers are fine: this is where a
// WallClock is constructed and injected downward.
class Root {
public:
    double now() {
        Stopwatch sw;  // src/common/ is not confined: silent
        return 0.0;
    }
};
