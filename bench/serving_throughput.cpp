// Serving-layer throughput bench: open-loop arrivals against mw::serve.
//
// Part 1 sweeps offered load from below to past saturation on a compute-heavy
// model and shows the bounded queue shedding gracefully: sustained QPS
// plateaus, the excess is rejected explicitly, and queue-wait percentiles
// stay bounded instead of growing without limit.
//
// Part 2 holds the worker count fixed and toggles dynamic batching on a tiny
// model under max-rate arrivals, printing per-policy throughput / latency /
// energy. There the per-request serving cost (scheduler decision under the
// serialising mutex, dispatch bookkeeping, future completion) dominates, and
// coalescing amortises it across the batch — the real mechanism by which
// dynamic batching raises sustained QPS at equal workers.
//
// Part 3 repeats the max-rate run with a TraceRecorder installed and reports
// the sustained-QPS cost of recording every request-path span (budget: <5%).
//
// Part 4 is the degraded-mode bench: a resilient server under a hard device
// kill. Three closed-loop windows (healthy, killed, revived) show sustained
// QPS surviving the kill via breaker exclusion and recovering after the
// half-open re-probe.
//
// Part 5 is the lock-free hot path (DESIGN.md §15): closed-loop ticket
// clients against the sharded work-stealing rings vs the same traffic
// against the legacy mutexed queue at equal workers. Its ticket-path QPS is
// the headline `sustained_qps` the CI gate compares.
//
// Flags: --quick shortens every window (the CI gate mode); --json PATH
// writes the headline numbers as BENCH_serving.json for tools/bench-compare;
// --contend runs only the hot-vs-legacy comparison with more workers than
// hardware cores (the TSan CI leg: maximum steal/preemption interleaving).
#include <cmath>
#include <cstdio>
#include <cstring>
#include <deque>
#include <map>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/format.hpp"
#include "common/timer.hpp"
#include "fault/fault.hpp"
#include "fault/health.hpp"
#include "ml/random_forest.hpp"
#include "nn/zoo.hpp"
#include "obs/trace.hpp"
#include "sched/scheduler.hpp"
#include "sched/scheduler_dataset.hpp"
#include "serve/server.hpp"
#include "workload/stream.hpp"

using namespace mw;

namespace {

struct World {
    device::DeviceRegistry registry = device::DeviceRegistry::standard_testbed();
    sched::Dispatcher dispatcher{registry};
    std::unique_ptr<sched::OnlineScheduler> scheduler;

    World() {
        dispatcher.register_model(nn::zoo::simple(), 7);
        dispatcher.register_model(nn::zoo::mnist_small(), 7);
        dispatcher.deploy_all();
        const auto dataset = sched::build_scheduler_dataset(
            registry, {nn::zoo::simple(), nn::zoo::mnist_small()},
            {.batches = {8, 64, 512}});
        sched::DevicePredictor predictor(
            std::make_unique<ml::RandomForest>(
                ml::ForestConfig{.n_estimators = 20, .seed = 2}),
            dataset.device_names);
        predictor.fit(dataset);
        scheduler = std::make_unique<sched::OnlineScheduler>(
            dispatcher, std::move(predictor), dataset,
            sched::SchedulerConfig{.explore_probability = 0.0});
        for (device::Device* dev : registry.devices()) dev->reset_timeline();
    }
};

struct TrafficSpec {
    const char* model;
    std::size_t sample_elems;
    std::size_t samples_per_request;
    bool mixed_policies;
};

/// Pre-generated payload pool so the pacing thread only pays a memcpy.
std::vector<Tensor> make_payload_pool(const TrafficSpec& traffic, std::size_t count) {
    workload::SyntheticSource source(23);
    std::vector<Tensor> pool;
    pool.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        pool.push_back(source.next_batch(traffic.samples_per_request,
                                         traffic.sample_elems));
    }
    return pool;
}

struct LoadResult {
    serve::ServerSnapshot snapshot;
    double elapsed_s = 0.0;
    std::size_t offered = 0;
};

/// Open-loop load: arrivals are paced at `qps` regardless of completions
/// (catch-up pacing — a slow server cannot slow the clients down). A huge
/// `qps` degenerates into submit-as-fast-as-possible.
LoadResult run_load(World& world, const serve::ServerConfig& config,
                    const TrafficSpec& traffic, double qps, double duration_s) {
    WallClock clock;
    serve::Server server(*world.scheduler, world.dispatcher, clock, config);
    const auto pool = make_payload_pool(traffic, 64);

    std::vector<std::future<serve::Response>> futures;
    futures.reserve(static_cast<std::size_t>(qps < 1e6 ? qps * duration_s * 1.1 : 1e5));
    std::size_t offered = 0;
    const double start = clock.now();
    while (true) {
        const double now = clock.now() - start;
        if (now >= duration_s) break;
        const double target = static_cast<double>(offered) / qps;
        if (target > now) {
            sleep_for_seconds(target - now);
            continue;
        }
        const auto policy =
            traffic.mixed_policies
                ? static_cast<sched::Policy>(offered % serve::kPolicyLanes)
                : sched::Policy::kMaxThroughput;
        futures.push_back(server.submit(serve::InferenceRequest{
            traffic.model, Tensor(pool[offered % pool.size()]), policy}));
        ++offered;
    }
    server.stop();  // drains the queue, then resolves everything
    const double elapsed = clock.now() - start;
    for (auto& f : futures) f.get();
    return {server.stats(), elapsed, offered};
}

void print_sweep_row(double qps, const LoadResult& r) {
    const auto t = r.snapshot.totals();
    const auto& tp = r.snapshot.of(sched::Policy::kMaxThroughput);
    std::printf("  %8.0f  %9.0f  %9zu  %9zu  %10s  %10s  %10s\n", qps,
                static_cast<double>(t.completed) / r.elapsed_s, t.completed,
                t.rejected_full + t.evicted + t.shed,
                format_duration(tp.queue_p50_s).c_str(),
                format_duration(tp.queue_p95_s).c_str(),
                format_duration(tp.queue_p99_s).c_str());
}

void print_policy_table(const char* label, const LoadResult& r) {
    std::printf("%s (offered %zu in %.2fs)\n", label, r.offered, r.elapsed_s);
    std::printf("  %-16s %10s %10s %10s %10s %10s\n", "policy", "done QPS", "queue p95",
                "exec p95", "energy J", "coalesced");
    for (std::size_t lane = 0; lane < serve::kPolicyLanes; ++lane) {
        const auto policy = static_cast<sched::Policy>(lane);
        const auto& p = r.snapshot.of(policy);
        const auto& c = p.counters;
        const double mean_coalesced =
            c.batches_executed > 0
                ? static_cast<double>(c.coalesced_requests) /
                      static_cast<double>(c.batches_executed)
                : 0.0;
        std::printf("  %-16s %10.0f %10s %10s %10.2f %10.2f\n",
                    sched::policy_name(policy).c_str(),
                    static_cast<double>(c.completed) / r.elapsed_s,
                    format_duration(p.queue_p95_s).c_str(),
                    format_duration(p.execute_p95_s).c_str(), c.energy_j, mean_coalesced);
    }
    const auto t = r.snapshot.totals();
    std::printf("  total: sustained %.0f QPS, rejected %zu, shed %zu\n\n",
                static_cast<double>(t.completed) / r.elapsed_s,
                t.rejected_full + t.evicted, t.shed);
}

/// Part 5: closed-loop ticket clients on the lock-free hot path. Each client
/// keeps a bounded window of outstanding tickets (submit_ticket / try_result
/// / release), so steady state performs no heap allocation end to end and
/// the measured QPS is what the server sustains, not what a pacer offered.
LoadResult run_ticket_load(World& world, const serve::ServerConfig& config,
                           const TrafficSpec& traffic, double duration_s,
                           std::size_t clients) {
    constexpr std::size_t kWindow = 64;
    WallClock clock;
    serve::Server server(*world.scheduler, world.dispatcher, clock, config);
    MW_CHECK(server.hot_path_active(), "ticket load needs the hot path active");
    const auto pool = make_payload_pool(traffic, 64);

    Atomic<std::size_t> offered{0};
    std::vector<std::thread> threads;
    threads.reserve(clients);
    const double start = clock.now();
    for (std::size_t c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            std::vector<serve::Ticket> window;
            window.reserve(kWindow);
            serve::TicketResult result;
            std::size_t submitted = 0;
            std::size_t next = c;
            const auto reap = [&](std::size_t down_to) {
                while (window.size() > down_to) {
                    bool progressed = false;
                    for (std::size_t j = 0; j < window.size();) {
                        if (server.try_result(window[j], result)) {
                            server.release(window[j]);
                            window[j] = window.back();
                            window.pop_back();
                            progressed = true;
                        } else {
                            ++j;
                        }
                    }
                    if (!progressed) sleep_for_seconds(20e-6);
                }
            };
            while (clock.now() - start < duration_s) {
                while (window.size() < kWindow) {
                    const Tensor& payload = pool[next % pool.size()];
                    ++next;
                    const auto policy =
                        traffic.mixed_policies
                            ? static_cast<sched::Policy>(next % serve::kPolicyLanes)
                            : sched::Policy::kMaxThroughput;
                    const auto out = server.submit_ticket(
                        traffic.model, payload.span(),
                        traffic.samples_per_request, policy);
                    ++submitted;
                    if (!out.admitted) break;  // shed: reap and retry
                    window.push_back(out.ticket);
                }
                reap(kWindow / 2);
            }
            reap(0);
            offered.fetch_add(submitted, std::memory_order_relaxed);
        });
    }
    for (std::thread& t : threads) t.join();
    const double elapsed = clock.now() - start;
    server.stop();
    return {server.stats(), elapsed, offered.load(std::memory_order_relaxed)};
}

/// Part 4: one resilient server through a kill/revive cycle. Closed-loop
/// clients (bounded outstanding window) so each window's QPS reflects what
/// the fleet sustains, not what an open-loop pacer offered.
struct DegradedResult {
    double healthy_qps = 0.0;
    double killed_qps = 0.0;
    double recovered_qps = 0.0;
    std::string killed_device;
};

DegradedResult run_degraded(World& world, double window_s) {
    WallClock clock;
    fault::FaultInjector injector({.seed = 42}, clock);
    world.dispatcher.set_fault_injector(&injector);

    serve::ServerConfig config;
    config.workers = 3;
    config.queue_capacity = 128;
    config.batching.enabled = false;
    config.resilience.enabled = true;
    config.resilience.health.cooldown_s = 0.05;
    config.resilience.health.probe_interval_s = 0.01;
    serve::Server server(*world.scheduler, world.dispatcher, clock, config);

    const TrafficSpec tiny{"simple", 4, 8, false};
    const auto pool = make_payload_pool(tiny, 64);
    std::size_t next_payload = 0;

    const auto window = [&](double duration_s) {
        std::map<std::string, int> by_device;
        int completed = 0;
        std::deque<std::future<serve::Response>> inflight;
        const auto reap = [&](std::size_t down_to) {
            while (inflight.size() > down_to) {
                const serve::Response r = inflight.front().get();
                inflight.pop_front();
                if (r.ok()) {
                    ++completed;
                    by_device[r.device_name] += 1;
                }
            }
        };
        const double start = clock.now();
        while (clock.now() - start < duration_s) {
            reap(32);
            inflight.push_back(server.submit(serve::InferenceRequest{
                tiny.model, Tensor(pool[next_payload++ % pool.size()]),
                sched::Policy::kMaxThroughput}));
        }
        reap(0);
        const double elapsed = clock.now() - start;
        return std::pair<double, std::map<std::string, int>>{
            elapsed > 0.0 ? completed / elapsed : 0.0, by_device};
    };

    DegradedResult out;
    const auto [healthy_qps, healthy_by_device] = window(window_s);
    out.healthy_qps = healthy_qps;
    int busiest_count = 0;
    for (const auto& [device, count] : healthy_by_device) {
        if (count > busiest_count) {
            out.killed_device = device;
            busiest_count = count;
        }
    }

    injector.kill_device(out.killed_device);
    out.killed_qps = window(window_s).first;

    injector.revive_device(out.killed_device);
    sleep_for_seconds(2 * config.resilience.health.cooldown_s);
    // Drive traffic until the half-open probe closes the breaker (bounded).
    for (int round = 0; round < 100 &&
                        server.health()->state(out.killed_device) !=
                            fault::BreakerState::kClosed;
         ++round) {
        (void)window(window_s / 20.0);
    }
    out.recovered_qps = window(window_s).first;

    server.stop();
    world.dispatcher.set_fault_injector(nullptr);
    return out;
}

/// The headline numbers the CI regression gate compares. `sustained_qps` is
/// the hot ticket-path number; `legacy_qps` (the pre-hot-path serving stack
/// on identical traffic and workers) is printed for context.
struct BenchSummary {
    double sustained_qps = 0.0;
    double queue_wait_p95_s = 0.0;
    double queue_wait_p99_s = 0.0;
    double mean_batch = 0.0;
    double energy_per_request_j = 0.0;
    double legacy_qps = 0.0;
    DegradedResult degraded;
};

/// The hot-vs-legacy comparison (part 5, and the whole bench under
/// --contend): identical traffic, identical worker count, the only delta is
/// HotPathConfig::enabled and the client interface it unlocks.
std::pair<LoadResult, LoadResult> run_hot_vs_legacy(World& world,
                                                    std::size_t workers,
                                                    double duration_s,
                                                    std::size_t clients) {
    const TrafficSpec tiny{"simple", 4, 8, true};
    serve::ServerConfig hot;
    hot.workers = workers;
    hot.queue_capacity = 1024;
    hot.admission.policy = serve::BackpressurePolicy::kRejectNewest;
    hot.batching = {.enabled = true, .max_requests = 32, .max_samples = 4096,
                    .max_wait_s = 0.002};
    hot.hot_path.stats_flush_batches = 32;  // amortise shard flushes under contention
    serve::ServerConfig legacy = hot;
    legacy.hot_path.enabled = false;

    std::printf("\nlock-free hot path vs legacy queue on %s, %zu workers, "
                "%zu closed-loop clients:\n",
                tiny.model, workers, clients);
    const auto legacy_result = run_load(world, legacy, tiny, 1e9, duration_s);
    const double legacy_qps =
        static_cast<double>(legacy_result.snapshot.totals().completed) /
        legacy_result.elapsed_s;
    const auto hot_result = run_ticket_load(world, hot, tiny, duration_s, clients);
    const double hot_qps =
        static_cast<double>(hot_result.snapshot.totals().completed) /
        hot_result.elapsed_s;
    const auto& hot_lane = hot_result.snapshot.of(sched::Policy::kMaxThroughput);
    std::printf("  legacy (mutexed queue, futures):   %9.0f QPS\n", legacy_qps);
    std::printf("  hot (sharded rings, tickets):      %9.0f QPS  (%.2fx)\n", hot_qps,
                legacy_qps > 0.0 ? hot_qps / legacy_qps : 0.0);
    std::printf("  hot queue wait: p95 %s, p99 %s (bounded by the closed loop)\n",
                format_duration(hot_lane.queue_p95_s).c_str(),
                format_duration(hot_lane.queue_p99_s).c_str());
    return {hot_result, legacy_result};
}

void write_json(const char* path, const BenchSummary& s) {
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path);
        std::exit(1);
    }
    std::fprintf(f,
                 "{\n"
                 "  \"sustained_qps\": %.3f,\n"
                 "  \"queue_wait_p95_s\": %.9f,\n"
                 "  \"queue_wait_p99_s\": %.9f,\n"
                 "  \"mean_batch\": %.3f,\n"
                 "  \"energy_per_request_j\": %.9f,\n"
                 "  \"legacy_qps\": %.3f,\n"
                 "  \"degraded\": {\n"
                 "    \"healthy_qps\": %.3f,\n"
                 "    \"killed_qps\": %.3f,\n"
                 "    \"recovered_qps\": %.3f,\n"
                 "    \"recovered_ratio\": %.4f\n"
                 "  }\n"
                 "}\n",
                 s.sustained_qps, s.queue_wait_p95_s, s.queue_wait_p99_s,
                 s.mean_batch, s.energy_per_request_j, s.legacy_qps,
                 s.degraded.healthy_qps, s.degraded.killed_qps,
                 s.degraded.recovered_qps,
                 s.degraded.healthy_qps > 0.0
                     ? s.degraded.recovered_qps / s.degraded.healthy_qps
                     : 0.0);
    std::fclose(f);
    std::printf("wrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
    bool quick = false;
    bool contend = false;
    const char* json_path = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--contend") == 0) {
            contend = true;
        } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[++i];
        } else {
            std::fprintf(stderr, "usage: %s [--quick] [--contend] [--json PATH]\n",
                         argv[0]);
            return 2;
        }
    }
    const double sweep_s = quick ? 0.4 : 1.2;
    const double maxrate_s = quick ? 0.5 : 1.5;
    const double degraded_window_s = quick ? 0.4 : 1.0;
    const std::vector<double> sweep_points =
        quick ? std::vector<double>{250.0, 4000.0}
              : std::vector<double>{50.0, 250.0, 1000.0, 4000.0};

    std::printf("building world (profiling + scheduler training)...\n");
    World world;

    // --- --contend: hot-vs-legacy only, oversubscribed -------------------
    // Workers beyond the hardware cores force preemption inside every ring
    // and steal window; the TSan CI leg runs exactly this configuration, so
    // the schedules the sanitizer sees are the most hostile ones.
    if (contend) {
        const std::size_t cores = std::thread::hardware_concurrency();
        const std::size_t workers = (cores > 0 ? cores : 4) + 2;
        std::printf("\ncontention mode: %zu workers on %zu hardware cores\n",
                    workers, cores);
        (void)run_hot_vs_legacy(world, workers, quick ? 0.5 : 1.5, workers);
        return 0;
    }

    // --- Part 1: offered-load sweep, batching off ----------------------
    // mnist-small is compute-heavy, so three workers saturate quickly and
    // the interesting behaviour is what the queue does past that point.
    const TrafficSpec heavy{"mnist-small", 784, 8, false};
    serve::ServerConfig sweep_config;
    sweep_config.workers = 3;
    sweep_config.queue_capacity = 128;
    sweep_config.admission.policy = serve::BackpressurePolicy::kRejectNewest;
    sweep_config.batching.enabled = false;

    std::printf("\nopen-loop sweep: %s, %zu samples/request, %zu workers, queue cap %zu\n",
                heavy.model, heavy.samples_per_request, sweep_config.workers,
                sweep_config.queue_capacity);
    std::printf("  %8s  %9s  %9s  %9s  %10s  %10s  %10s\n", "offered", "sustained",
                "completed", "refused", "queue p50", "queue p95", "queue p99");
    for (const double qps : sweep_points) {
        const auto result = run_load(world, sweep_config, heavy, qps, sweep_s);
        print_sweep_row(qps, result);
    }
    std::printf("  (refused grows past saturation while queue-wait percentiles stay"
                " bounded: the queue sheds, it does not build an unbounded backlog)\n");

    // --- Part 2: batching off vs on at max-rate arrivals ----------------
    // The tiny Iris model makes per-request serving overhead the bottleneck;
    // arrivals are submitted as fast as the client can push them.
    const TrafficSpec tiny{"simple", 4, 8, true};
    serve::ServerConfig unbatched = sweep_config;
    serve::ServerConfig batched = sweep_config;
    batched.batching = {.enabled = true, .max_requests = 32, .max_samples = 4096,
                        .max_wait_s = 0.002};

    std::printf("\ndynamic batching on %s at max-rate arrivals, mixed policies:\n\n",
                tiny.model);
    const auto off = run_load(world, unbatched, tiny, 1e9, maxrate_s);
    print_policy_table("batching OFF (batch=1)", off);
    const auto on = run_load(world, batched, tiny, 1e9, maxrate_s);
    print_policy_table("batching ON (<=32 req / 2 ms window)", on);

    const double off_qps =
        static_cast<double>(off.snapshot.totals().completed) / off.elapsed_s;
    const double on_qps =
        static_cast<double>(on.snapshot.totals().completed) / on.elapsed_s;
    std::printf("sustained QPS: %.0f -> %.0f (%.1fx) at equal workers\n", off_qps, on_qps,
                off_qps > 0.0 ? on_qps / off_qps : 0.0);

    // --- Part 5: lock-free hot path vs legacy queue ----------------------
    // Same tiny model and worker count; ticket clients on sharded rings vs
    // the mutexed queue. This is the CI gate's headline sustained_qps.
    const auto [hot, legacy] = run_hot_vs_legacy(world, 3, maxrate_s, 4);

    // Headline numbers for the CI regression gate, from the hot ticket run.
    BenchSummary summary;
    {
        const auto totals = hot.snapshot.totals();
        summary.sustained_qps =
            static_cast<double>(totals.completed) / hot.elapsed_s;
        summary.legacy_qps =
            static_cast<double>(legacy.snapshot.totals().completed) /
            legacy.elapsed_s;
        const auto& lane = hot.snapshot.of(sched::Policy::kMaxThroughput);
        summary.queue_wait_p95_s = std::isnan(lane.queue_p95_s) ? 0.0 : lane.queue_p95_s;
        summary.queue_wait_p99_s = std::isnan(lane.queue_p99_s) ? 0.0 : lane.queue_p99_s;
        summary.mean_batch =
            totals.batches_executed > 0
                ? static_cast<double>(totals.coalesced_requests) /
                      static_cast<double>(totals.batches_executed)
                : 0.0;
        summary.energy_per_request_j =
            totals.completed > 0
                ? totals.energy_j / static_cast<double>(totals.completed)
                : 0.0;
    }

    // --- Part 3: request-path tracing overhead --------------------------
    // Same max-rate run twice: hooks with no recorder installed (one atomic
    // load per hook — the production "tracing off" cost) vs a recorder
    // capturing every span. Under -DMW_OBS=OFF this section is compiled out
    // along with the hooks themselves.
#if defined(MW_OBS_ENABLED)
    std::printf("\ntracing overhead on %s at max-rate arrivals (batching ON):\n",
                tiny.model);
    const auto plain = run_load(world, batched, tiny, 1e9, maxrate_s);
    const double plain_qps =
        static_cast<double>(plain.snapshot.totals().completed) / plain.elapsed_s;

    obs::TraceRecorder recorder({.ring_capacity = std::size_t{1} << 17});
    obs::TraceRecorder::install(&recorder);
    const auto traced = run_load(world, batched, tiny, 1e9, maxrate_s);
    obs::TraceRecorder::install(nullptr);
    const double traced_qps =
        static_cast<double>(traced.snapshot.totals().completed) / traced.elapsed_s;

    std::printf("  tracing OFF: %9.0f QPS\n", plain_qps);
    std::printf("  tracing ON:  %9.0f QPS  (%zu spans, %zu dropped, %zu threads)\n",
                traced_qps, recorder.snapshot().size(), recorder.dropped(),
                recorder.thread_count());
    const double overhead_pct =
        plain_qps > 0.0 ? (plain_qps - traced_qps) / plain_qps * 100.0 : 0.0;
    std::printf("  overhead: %.1f%% of sustained QPS (budget: < 5%%)\n", overhead_pct);
#else
    std::printf("\n(tracing hooks compiled out: MW_OBS=OFF)\n");
#endif

    // --- Part 4: degraded mode -------------------------------------------
    // Kill the busiest device mid-run; the breaker opens and excludes it, so
    // sustained QPS survives on the remaining devices, and after revival the
    // half-open re-probe re-admits it.
    std::printf("\ndegraded mode: hard device kill + breaker recovery (%s):\n",
                tiny.model);
    summary.degraded = run_degraded(world, degraded_window_s);
    const auto& deg = summary.degraded;
    std::printf("  healthy:   %9.0f QPS\n", deg.healthy_qps);
    std::printf("  killed:    %9.0f QPS  (%s down, breaker open)\n", deg.killed_qps,
                deg.killed_device.c_str());
    std::printf("  recovered: %9.0f QPS  (revived + re-admitted via half-open probe)\n",
                deg.recovered_qps);
    const double recovered_ratio =
        deg.healthy_qps > 0.0 ? deg.recovered_qps / deg.healthy_qps : 0.0;
    std::printf("  recovered/healthy: %.2f (target: >= 0.70)%s\n", recovered_ratio,
                recovered_ratio >= 0.70 ? "" : "  ** BELOW TARGET **");

    if (json_path != nullptr) write_json(json_path, summary);
    return 0;
}
