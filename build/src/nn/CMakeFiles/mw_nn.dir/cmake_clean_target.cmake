file(REMOVE_RECURSE
  "libmw_nn.a"
)
