// Schedules: the placement + fusion plan for one operator DAG, and the
// self-contained text format the independent verifier consumes.
//
// Execution contract (the "verifier approximation contract", DESIGN.md §17):
//   * A Step runs one fused group of operators on one device, in three
//     phases: load (cut-edge inputs enter fast memory), compute (operators
//     run; fused intermediates are ephemeral and move no memory traffic),
//     store (cut-edge outputs stream back out).
//   * Cut tensors whose producer and consumer steps share a device
//     round-trip through that device's own slow tier at `local_gbps`
//     (DRAM for the CPU/iGPU, on-board GDDR for a discrete GPU). Tensors
//     crossing devices, graph inputs (OpNode::external_in_bytes) and graph
//     outputs cross the spill link at `link_gbps` + `link_latency_s` (PCIe
//     for discrete devices; for integrated ones link == DRAM). A tensor
//     with consumers on several devices pays the link (conservative).
//   * Steps on one device never overlap; for every edge u -> v crossing
//     steps, v's step starts no earlier than u's step ends (u's tensor is
//     available only after u's store phase completed).
//   * Fast-memory residency during a step: all external inputs for the whole
//     step, plus live fused intermediates, plus the running node's output.
//     Cut outputs stream back eagerly and weights stream within the compute
//     roofline; neither occupies the scratchpad.
//
// A schedule file embeds the graph, the memory specs, and the steps, so
// `mw-graph-verify` can replay it with no other inputs.
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "graph/dag.hpp"

namespace mw::graph {

/// The two-level memory model of one device, as the planner saw it.
/// `scratchpad_bytes == 0` means unlimited fast memory (legacy devices);
/// `link_gbps` is the spill-path bandwidth towards the shared host memory
/// (PCIe for discrete devices, DRAM for integrated ones); `local_gbps` is
/// the device's own slow tier, used by same-device cross-step tensors.
struct MemorySpec {
    std::string name;
    double scratchpad_bytes = 0.0;
    double link_gbps = 0.0;
    double link_latency_s = 0.0;
    double local_gbps = 0.0;
};

/// One fused group placed on one device.
struct Step {
    std::size_t device = 0;       ///< index into Schedule::devices
    std::vector<NodeId> nodes;    ///< group members, topologically ordered
    double start_s = 0.0;
    double load_s = 0.0;          ///< cut-edge inputs crossing the spill link
    double compute_s = 0.0;
    double store_s = 0.0;         ///< cut-edge outputs crossing back
    double energy_j = 0.0;

    [[nodiscard]] double end_s() const { return start_s + load_s + compute_s + store_s; }
    [[nodiscard]] double duration_s() const { return load_s + compute_s + store_s; }
};

/// A full schedule for one graph.
struct Schedule {
    std::string graph_name;
    std::vector<MemorySpec> devices;
    std::vector<Step> steps;

    [[nodiscard]] double makespan_s() const;
    [[nodiscard]] double total_energy_j() const;
    [[nodiscard]] double spill_seconds() const;  ///< sum of load + store phases
    [[nodiscard]] std::size_t fused_ops() const; ///< operators in multi-op steps

    /// Serialise schedule + graph to the `mwsched 1` text format.
    void save(std::ostream& os, const Graph& graph) const;
    void save_file(const std::string& path, const Graph& graph) const;

    /// Parse a schedule file; throws IoError on malformed input.
    static std::pair<Graph, Schedule> load(std::istream& is);
    static std::pair<Graph, Schedule> load_file(const std::string& path);
};

/// When the MW_SCHEDULE_EXPORT_DIR environment variable is set, write the
/// schedule to `<dir>/<stem>.mws` (the CI graph-verify job sets the variable,
/// runs the tests and the bench, then replays every exported file through the
/// independent verifier). No-op otherwise. Returns the path written, if any.
std::string maybe_export_schedule(const Graph& graph, const Schedule& schedule,
                                  const std::string& stem);

}  // namespace mw::graph
