// Error handling primitives shared by every manyworlds library.
//
// We follow the C++ Core Guidelines: errors that a caller can reasonably
// handle are reported via exceptions derived from mw::Error; programming
// errors (violated preconditions) abort via MW_ASSERT in debug-friendly form.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <string_view>

namespace mw {

/// Base class of all exceptions thrown by manyworlds libraries.
class Error : public std::runtime_error {
public:
    explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a function argument is outside its documented domain.
class InvalidArgument : public Error {
public:
    explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown when an operation is attempted on an object in the wrong state
/// (e.g. dispatching to a device that has not loaded the model).
class StateError : public Error {
public:
    explicit StateError(const std::string& what) : Error(what) {}
};

/// Thrown on I/O failures (weight files, trace files, CSV outputs).
class IoError : public Error {
public:
    explicit IoError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_invalid(std::string_view expr, std::string_view file, int line,
                                       const std::string& msg) {
    std::string what;
    what.append(file).append(":").append(std::to_string(line)).append(": check `");
    what.append(expr).append("` failed: ").append(msg);
    throw InvalidArgument(what);
}

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const std::string& msg) noexcept {
    std::fprintf(stderr, "%s:%d: assertion `%s` failed: %s\n", file, line, expr, msg.c_str());
    std::abort();
}
}  // namespace detail

}  // namespace mw

/// Validate a caller-visible precondition; throws mw::InvalidArgument on failure.
#define MW_CHECK(expr, msg)                                                     \
    do {                                                                        \
        if (!(expr)) ::mw::detail::throw_invalid(#expr, __FILE__, __LINE__, (msg)); \
    } while (0)

/// Validate an internal invariant with a diagnostic message; aborts on
/// failure (never disabled).
#define MW_ASSERT_MSG(expr, msg)                                              \
    do {                                                                      \
        if (!(expr)) ::mw::detail::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
    } while (0)

/// Validate an internal invariant; aborts on failure (never disabled).
#define MW_ASSERT(expr) MW_ASSERT_MSG(expr, "internal invariant violated")

/// Debug-build-only invariant for hot paths (bounds checks in element
/// accessors and kernels). Compiled out under NDEBUG; the sanitizer presets
/// build Debug, so ASan/UBSan/TSan runs get the checks for free.
#ifdef NDEBUG
#define MW_DCHECK(expr, msg) static_cast<void>(0)
#else
#define MW_DCHECK(expr, msg) MW_ASSERT_MSG(expr, msg)
#endif
