// Feature-matrix dataset for the scheduler's classical ML toolkit.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace mw::ml {

/// A dense (n x features) dataset with integer class labels.
struct MlDataset {
    std::size_t features = 0;
    std::size_t classes = 0;
    std::vector<double> x;  ///< row-major, size() * features
    std::vector<int> y;

    [[nodiscard]] std::size_t size() const { return y.size(); }

    [[nodiscard]] std::span<const double> row(std::size_t i) const {
        MW_CHECK(i < size(), "row index out of range");
        return {x.data() + i * features, features};
    }

    /// Append one labelled row; the width must match `features`.
    void add(std::span<const double> row_values, int label) {
        MW_CHECK(row_values.size() == features, "row width mismatch");
        MW_CHECK(label >= 0 && static_cast<std::size_t>(label) < classes, "label out of range");
        x.insert(x.end(), row_values.begin(), row_values.end());
        y.push_back(label);
    }

    /// Dataset restricted to the given row indices.
    [[nodiscard]] MlDataset subset(std::span<const std::size_t> indices) const {
        MlDataset out;
        out.features = features;
        out.classes = classes;
        out.x.reserve(indices.size() * features);
        out.y.reserve(indices.size());
        for (const std::size_t i : indices) out.add(row(i), y.at(i));
        return out;
    }

    /// Per-class row counts.
    [[nodiscard]] std::vector<std::size_t> class_counts() const {
        std::vector<std::size_t> counts(classes, 0);
        for (const int label : y) ++counts[label];
        return counts;
    }
};

}  // namespace mw::ml
