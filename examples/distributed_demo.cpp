// Distributed serving demo (and the CI smoke test for mw::cluster): stand up
// a 4-node fleet over the simulated transport, route a mixed load through
// the router with a TraceRecorder installed, partition one node away
// mid-run and let the per-node breaker isolate it, then heal and watch the
// half-open probe re-admit it. Prints the router's accounting and the
// per-node frame counters, and exports the trace (distributed_demo.trace.json
// — open in chrome://tracing or https://ui.perfetto.dev) plus the
// mw_cluster_* metrics as Prometheus text. Artifacts land in the build tree
// by default; set MW_DEMO_OUTPUT_DIR to redirect. Exits 0 only when the terminal
// accounting balances, the healed node actually serves again, AND the trace
// contains the cluster phases (route, serialize, link, remote-exec)
// correlated by request id.
#include <chrono>
#include <cstdio>
#include <future>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "demo_output.hpp"

#include "cluster/node.hpp"
#include "cluster/router.hpp"
#include "cluster/transport.hpp"
#include "common/timer.hpp"
#include "fault/netfault.hpp"
#include "nn/zoo.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "workload/stream.hpp"

using namespace mw;

namespace {

struct Demo {
    ManualClock clock;
    fault::NetFaultInjector net;
    std::unique_ptr<cluster::Transport> transport;
    std::vector<std::unique_ptr<cluster::Node>> nodes;
    std::unique_ptr<cluster::Router> router;
    workload::SyntheticSource source{5};

    explicit Demo(const cluster::ModelBundle& bundle) : net({}, &clock) {
        transport = std::make_unique<cluster::Transport>(
            clock, cluster::TransportConfig{}, &net);
        for (std::size_t i = 0; i < 4; ++i) {
            cluster::NodeConfig config;
            config.name = "node" + std::to_string(i);
            config.server.workers = 2;
            config.server.queue_capacity = 256;
            config.server.worker_poll_s = 0.0005;
            config.completion_poll_s = 0.0005;
            nodes.push_back(std::make_unique<cluster::Node>(config, bundle,
                                                            clock, *transport));
        }
        cluster::RouterConfig rc;
        rc.policy = cluster::RoutePolicy::kLeastLoaded;
        rc.request_timeout_s = 0.25;
        rc.max_attempts = 3;
        rc.maintenance_poll_s = 0.0005;
        rc.health.consecutive_failures_to_open = 2;
        rc.health.min_observations = 2;
        rc.health.cooldown_s = 0.5;
        rc.health.probe_interval_s = 0.01;
        router = std::make_unique<cluster::Router>(clock, *transport, rc);
        for (const auto& node : nodes) {
            router->add_node(node->name(), node->models());
        }
    }

    ~Demo() {
        router->stop();
        transport->stop();
        for (auto& node : nodes) node->stop();
    }

    std::future<cluster::ClusterResponse> submit(std::size_t i) {
        serve::InferenceRequest request;
        request.model_name = "simple";
        request.payload = source.next_batch(4, 4);
        request.policy = static_cast<sched::Policy>(i % serve::kPolicyLanes);
        return router->submit(std::move(request));
    }

    /// Advance the simulated clock only while the fleet makes no progress.
    bool drive(std::uint64_t target) {
        const double limit = clock.now() + 60.0;
        std::uint64_t last = router->counters().terminal();
        while (router->counters().terminal() < target) {
            if (clock.now() > limit) return false;
            sleep_for_seconds(0.0003);
            const std::uint64_t done = router->counters().terminal();
            if (done == last) clock.advance(0.002);
            last = done;
        }
        return true;
    }
};

}  // namespace

int main() {
    std::printf("profiling + building the shared model bundle...\n");
    const cluster::ModelBundle bundle =
        cluster::build_model_bundle({nn::zoo::simple()}, {1, 4, 16});

    obs::TraceRecorder recorder({.ring_capacity = 1 << 16});
    obs::TraceRecorder::install(&recorder);
    Demo demo(bundle);

    // --- Act 1: mixed load across the healthy fleet -----------------------
    std::printf("act 1: 40 requests across 4 nodes...\n");
    std::vector<std::future<cluster::ClusterResponse>> futures;
    for (std::size_t i = 0; i < 40; ++i) futures.push_back(demo.submit(i));
    bool ok = demo.drive(40);

    // --- Act 2: partition node3 away under load ---------------------------
    std::printf("act 2: partition node3 away, 40 more requests...\n");
    demo.net.partition({"router", "node0", "node1", "node2"});
    for (std::size_t i = 0; i < 40; ++i) futures.push_back(demo.submit(i));
    ok = ok && demo.drive(80);
    const auto node3_state = demo.router->health().state("node3");
    std::printf("  node3 breaker: %s\n",
                node3_state == fault::BreakerState::kOpen ? "open" : "NOT OPEN");

    // --- Act 3: heal and re-admit -----------------------------------------
    std::printf("act 3: heal the partition, wait out the cooldown, probe...\n");
    demo.net.heal_partition();
    demo.clock.advance(0.6);  // past the breaker cooldown
    bool node3_served = false;
    for (int round = 0; round < 40 && !node3_served; ++round) {
        std::vector<std::future<cluster::ClusterResponse>> probe;
        for (std::size_t i = 0; i < 4; ++i) probe.push_back(demo.submit(i));
        ok = ok && demo.drive(demo.router->counters().submitted);
        for (auto& f : probe) {
            node3_served |= f.get().node_name == "node3";
        }
    }
    std::printf("  node3 %s after heal\n",
                node3_served ? "re-admitted and serving" : "NEVER RE-ADMITTED");

    std::size_t completed = 0;
    for (auto& f : futures) {
        if (f.valid() && f.wait_for(std::chrono::seconds(0)) ==
                             std::future_status::ready) {
            completed += f.get().ok() ? 1 : 0;
        }
    }

    const auto counters = demo.router->counters();
    std::printf("\nrouter accounting: %llu submitted, %llu completed, %llu "
                "failed, %llu timeouts, %llu rerouted, %llu hedges\n",
                static_cast<unsigned long long>(counters.submitted),
                static_cast<unsigned long long>(counters.completed),
                static_cast<unsigned long long>(counters.failed),
                static_cast<unsigned long long>(counters.timeouts),
                static_cast<unsigned long long>(counters.rerouted),
                static_cast<unsigned long long>(counters.hedges));
    const bool balanced = counters.balanced();
    std::printf("terminal accounting %s\n",
                balanced ? "balanced" : "IMBALANCED");
    for (const auto& node : demo.nodes) {
        std::printf("  %s: %llu frames accepted, %llu refused\n",
                    node->name().c_str(),
                    static_cast<unsigned long long>(node->frames_accepted()),
                    static_cast<unsigned long long>(node->frames_refused()));
    }

    // --- observability exports --------------------------------------------
    bool trace_ok = true;
#if defined(MW_OBS_ENABLED)
    obs::TraceRecorder::install(nullptr);
    const auto spans = recorder.snapshot();
    std::set<std::string> phases_seen;
    std::set<std::uint64_t> correlated_ids;
    for (const auto& span : spans) {
        phases_seen.insert(obs::phase_name(span.phase));
        if (span.request_id != 0) correlated_ids.insert(span.request_id);
    }
    std::printf("\ntrace: %zu spans, %zu phases, %zu request ids\n",
                spans.size(), phases_seen.size(), correlated_ids.size());
    for (const char* phase : {"route", "serialize", "link", "remote-exec"}) {
        if (phases_seen.count(phase) == 0) {
            std::printf("trace INCOMPLETE: missing cluster phase '%s'\n", phase);
            trace_ok = false;
        }
    }
    trace_ok = trace_ok && !correlated_ids.empty();
    const std::string trace_path = demo::output_path("distributed_demo.trace.json");
    const std::string prom_path = demo::output_path("distributed_demo.metrics.prom");
    if (!obs::write_chrome_trace_file(trace_path, recorder) ||
        !obs::write_prometheus_file(prom_path, demo.router->metrics())) {
        std::printf("failed to write observability exports\n");
        trace_ok = false;
    } else {
        std::printf("wrote %s (chrome://tracing), %s\n", trace_path.c_str(),
                    prom_path.c_str());
    }
#else
    std::printf("\n(tracing hooks compiled out: MW_OBS=OFF)\n");
#endif

    const bool success = ok && balanced && node3_served &&
                         node3_state == fault::BreakerState::kOpen && trace_ok;
    std::printf("\n%s\n", success ? "distributed demo OK" : "distributed demo FAILED");
    return success ? 0 : 1;
}
