file(REMOVE_RECURSE
  "CMakeFiles/mw_device.dir/device.cpp.o"
  "CMakeFiles/mw_device.dir/device.cpp.o.d"
  "CMakeFiles/mw_device.dir/exec_model.cpp.o"
  "CMakeFiles/mw_device.dir/exec_model.cpp.o.d"
  "CMakeFiles/mw_device.dir/params.cpp.o"
  "CMakeFiles/mw_device.dir/params.cpp.o.d"
  "CMakeFiles/mw_device.dir/registry.cpp.o"
  "CMakeFiles/mw_device.dir/registry.cpp.o.d"
  "libmw_device.a"
  "libmw_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mw_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
