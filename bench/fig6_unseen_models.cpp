// Reproduces Figure 6: the scheduler's predictions for machine-learning
// models that are NOT in its training set. The forest is trained on the 16
// augmentation architectures only; the paper's five benchmark models are
// then scheduled across sample sizes under (a) the max-throughput policy and
// (b) the energy policy. For every point we report the achieved vs ideal
// value, whether the prediction was correct, and the aggregate loss.
#include <cstdio>
#include <filesystem>

#include "common/csv.hpp"
#include "common/format.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "ml/random_forest.hpp"
#include "nn/model_builder.hpp"
#include "nn/zoo.hpp"
#include "sched/oracle.hpp"
#include "sched/predictor.hpp"
#include "sched/scheduler_trainer.hpp"

using namespace mw;
using sched::GpuState;
using sched::Policy;

int main() {
    // Train on the augmentation zoo only (measured with noise).
    auto train_registry = device::DeviceRegistry::standard_testbed({.noise_sigma = 0.08});
    std::printf("Training the scheduler on the 16 augmentation architectures only...\n");
    const auto train_set = sched::build_scheduler_dataset(
        train_registry, nn::zoo::augmentation_models(), {.repeats = 2});

    ThreadPool pool;
    auto forest = std::make_unique<ml::RandomForest>(
        ml::ForestConfig{.n_estimators = 100, .max_depth = 10, .seed = 42}, &pool);
    sched::DevicePredictor predictor(std::move(forest), train_set.device_names);
    predictor.fit(train_set);

    // Evaluation world: a *noise-free* twin registry gives the ideal values.
    auto eval_registry = device::DeviceRegistry::standard_testbed({.noise_sigma = 0.0});
    std::map<std::string, nn::ModelDesc> descs;
    for (const auto& spec : nn::zoo::paper_models()) {
        auto model = std::make_shared<nn::Model>(nn::build_model(spec, 7));
        descs[spec.name] = model->desc();
        eval_registry.load_model_everywhere(model);
    }
    sched::Oracle oracle(eval_registry);

    std::filesystem::create_directories("bench_out");
    CsvWriter csv("bench_out/fig6_unseen_models.csv");
    csv.row({"policy", "model", "batch", "predicted", "ideal", "correct", "achieved",
             "ideal_value", "loss_pct"});

    std::size_t correct_total = 0;
    std::size_t total = 0;
    std::vector<double> losses;

    for (const Policy policy : {Policy::kMaxThroughput, Policy::kMinEnergy}) {
        std::printf("\n=== Fig. 6 (%s policy): unseen-model predictions ===\n",
                    sched::policy_name(policy).c_str());
        TextTable table;
        table.header({"model", "samples", "predicted", "ideal", "ok?", "achieved", "best",
                      "loss"});
        for (const auto& [name, desc] : descs) {
            for (std::size_t batch = 8; batch <= (128U << 10); batch *= 4) {
                // Warm-GPU world, as in the paper's figure.
                const auto decision = oracle.decide(name, batch, GpuState::kWarm, policy);
                const std::string predicted =
                    predictor.predict(policy, desc, batch, /*gpu_warm=*/true);

                const device::Measurement* achieved = nullptr;
                for (const auto& m : decision.all) {
                    if (m.device_name == predicted) achieved = &m;
                }
                const double got = policy == Policy::kMaxThroughput
                                       ? achieved->throughput_bps()
                                       : achieved->energy_j;
                const double ideal = policy == Policy::kMaxThroughput
                                         ? decision.best().throughput_bps()
                                         : decision.best().energy_j;
                const bool ok = predicted == decision.best_device;
                const double loss = policy == Policy::kMaxThroughput
                                        ? (ideal - got) / ideal
                                        : (got - ideal) / got;
                ++total;
                correct_total += ok;
                losses.push_back(loss);

                table.row({name, format_count(batch), predicted, decision.best_device,
                           ok ? "Y" : "WRONG",
                           policy == Policy::kMaxThroughput ? format_throughput(got)
                                                            : format_energy(got),
                           policy == Policy::kMaxThroughput ? format_throughput(ideal)
                                                            : format_energy(ideal),
                           format("{:.1f}%", loss * 100.0)});
                csv.row({sched::policy_name(policy), name, std::to_string(batch), predicted,
                         decision.best_device, ok ? "1" : "0", format("{}", got),
                         format("{}", ideal), format("{}", loss * 100.0)});
            }
        }
        table.print();
    }

    const double combined = static_cast<double>(correct_total) / static_cast<double>(total);
    std::printf("\nCombined unseen-model accuracy over both policies: %.1f%% "
                "(paper: ~91%%)\n", combined * 100.0);
    std::printf("Mean performance loss from wrong predictions: %.2f%% "
                "(paper: < 5%%)\n", mean(losses) * 100.0);
    std::printf("CSV written to bench_out/fig6_unseen_models.csv\n");
    return 0;
}
