#include "serve/admission.hpp"

#include "common/error.hpp"
#include "obs/trace.hpp"

namespace mw::serve {

AdmissionController::AdmissionController(AdmissionConfig config, RequestQueue& queue,
                                         ServerStats& stats)
    : config_(std::move(config)), queue_(&queue), stats_(&stats) {
    MW_CHECK(config_.ewma_alpha > 0.0 && config_.ewma_alpha <= 1.0,
             "ewma_alpha must be in (0,1]");
    MW_CHECK(config_.default_slo_s >= 0.0, "default_slo_s must be non-negative");
    MW_CHECK(config_.cold_execute_prior_s > 0.0,
             "cold_execute_prior_s must be positive (an unseen model is unknown, "
             "not free)");
}

bool AdmissionController::admit(Request&& request, double now) {
    if (request.slo_s <= 0.0) request.slo_s = config_.default_slo_s;
    request.arrival_s = now;
    stats_->on_submitted(request.policy);

    if (config_.policy == BackpressurePolicy::kDeadlineShed &&
        deadline_unmeetable(request, now)) {
        // Hopeless on arrival: the execute estimate alone exceeds the SLO.
        stats_->on_shed(request.policy);
        MW_TRACE_INSTANT(obs::Phase::kAdmit, request.id, now, "shed-deadline");
        MW_TRACE_INSTANT(obs::Phase::kComplete, request.id, now, "shed-deadline");
        request.complete(make_status_response(RequestStatus::kShedDeadline));
        return false;
    }

    if (queue_->try_push(request)) {
        stats_->on_admitted(request.policy);
        MW_TRACE_INSTANT(obs::Phase::kAdmit, request.id, now, "admitted");
        return true;
    }

    switch (config_.policy) {
        case BackpressurePolicy::kRejectNewest:
            break;  // fall through to rejecting the newcomer

        case BackpressurePolicy::kRejectOldest: {
            if (std::optional<Request> victim = queue_->evict_oldest()) {
                stats_->on_evicted(victim->policy);
                MW_TRACE_INSTANT(obs::Phase::kComplete, victim->id, now, "evicted");
                victim->complete(make_status_response(RequestStatus::kEvicted));
            }
            if (queue_->try_push(request)) {
                stats_->on_admitted(request.policy);
                MW_TRACE_INSTANT(obs::Phase::kAdmit, request.id, now, "admitted");
                return true;
            }
            break;  // closed, or lost the race for the freed slot
        }

        case BackpressurePolicy::kDeadlineShed: {
            auto doomed = queue_->remove_if(
                [&](const Request& r) { return deadline_unmeetable(r, now); });
            for (Request& r : doomed) {
                stats_->on_shed(r.policy);
                MW_TRACE_INSTANT(obs::Phase::kComplete, r.id, now, "shed-deadline");
                r.complete(make_status_response(RequestStatus::kShedDeadline));
            }
            if (queue_->try_push(request)) {
                stats_->on_admitted(request.policy);
                MW_TRACE_INSTANT(obs::Phase::kAdmit, request.id, now, "admitted");
                return true;
            }
            break;  // nothing sheddable: every queued request is still viable
        }
    }

    stats_->on_rejected_full(request.policy);
    MW_TRACE_INSTANT(obs::Phase::kAdmit, request.id, now, "rejected-full");
    MW_TRACE_INSTANT(obs::Phase::kComplete, request.id, now, "rejected-full");
    request.complete(make_status_response(RequestStatus::kRejectedFull));
    return false;
}

void AdmissionController::observe_execute(const std::string& model_name,
                                          double execute_s) {
    const MutexLock lock(mutex_);
    auto [it, inserted] = execute_ewma_.try_emplace(model_name, config_.ewma_alpha);
    it->second.add(execute_s);
}

double AdmissionController::estimated_execute_s(const std::string& model_name) const {
    {
        const MutexLock lock(mutex_);
        const auto it = execute_ewma_.find(model_name);
        if (it != execute_ewma_.end() && !it->second.empty()) {
            return it->second.value();
        }
    }
    // Cold model: unknown, not free. Returning 0 here made kDeadlineShed blind
    // to cold models — no request could ever be hopeless on arrival until the
    // EWMA warmed up. The predictor hook runs outside the EWMA lock.
    if (config_.cold_prior_fn) {
        const double prior = config_.cold_prior_fn(model_name);
        if (prior > 0.0) return prior;
    }
    return config_.cold_execute_prior_s;
}

bool AdmissionController::deadline_unmeetable(const Request& request, double now) const {
    if (request.slo_s <= 0.0) return false;
    const double waited = now - request.arrival_s;
    const double remaining = request.slo_s - waited;
    if (remaining <= 0.0) return true;
    return estimated_execute_s(request.model_name) > remaining;
}

}  // namespace mw::serve
