// mw-analyze: a minimal C++ lexer.
//
// Produces an identifier/punctuation token stream with line numbers, with
// comments and string/char literals stripped out of the stream but comments
// retained per-line (suppressions and `// relaxed:` justifications live in
// them). Preprocessor directives are dropped whole (including continuation
// lines): the analyzer reasons about the token stream of one configuration,
// not the preprocessed program, and `#define` bodies would otherwise be
// misread as code at namespace scope.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

namespace mwa {

enum class Tok {
    kIdent,   // identifiers and keywords
    kNumber,  // numeric literals (pp-number approximation)
    kString,  // string literal (text dropped)
    kChar,    // char literal (text dropped)
    kPunct,   // every operator/punctuator, one logical token ("::" is one)
};

struct Token {
    Tok kind;
    std::string text;  // identifier spelling or punctuator; empty for literals
    int line = 0;
};

struct LexedFile {
    std::string path;  // display path (root-relative)
    std::vector<Token> tokens;
    // line number -> concatenated comment text appearing on that line. A
    // block comment contributes to the line it STARTS on (trailing
    // justifications and allow() markers are same-line by convention).
    std::unordered_map<int, std::string> comments;
};

/// Tokenize `text`. Never fails: unrecognized bytes are skipped.
LexedFile lex(const std::string& path, const std::string& text);

}  // namespace mwa
