// Locks the calibration of the device models to the performance
// characterization the paper reports in §IV-C (Figures 3 and 4). Each test
// asserts one crossover/ordering the paper calls out in prose; windows are
// one binary order wide where the paper gives an exact sample size.
// Everything runs noise-free (deterministic world).
#include <gtest/gtest.h>

#include <map>

#include "device/registry.hpp"
#include "nn/model_builder.hpp"
#include "nn/zoo.hpp"
#include "sched/measurement_harness.hpp"

namespace {

using namespace mw;
using namespace mw::sched;

constexpr const char* kCpu = "i7-8700";
constexpr const char* kIgpu = "uhd630";
constexpr const char* kGtx = "gtx1080ti";

struct Sweep {
    std::vector<SweepPoint> points;
    std::vector<std::size_t> batches;

    Sweep() {
        auto registry = std::make_unique<device::DeviceRegistry>(
            device::DeviceRegistry::standard_testbed({.noise_sigma = 0.0}));
        std::vector<std::string> names;
        for (const auto& spec : nn::zoo::paper_models()) {
            registry->load_model_everywhere(
                std::make_shared<nn::Model>(nn::build_model(spec, 7)));
            names.push_back(spec.name);
        }
        MeasurementHarness harness(*registry);
        batches = MeasurementHarness::paper_batch_sizes();
        points = harness.sweep(names, batches);
    }

    const SweepPoint& at(const std::string& model, const std::string& dev, std::size_t batch,
                         GpuState state) const {
        for (const auto& p : points) {
            if (p.model_name == model && p.device_name == dev && p.batch == batch &&
                p.gpu_state == state) {
                return p;
            }
        }
        throw Error("missing point");
    }
    double tput(const std::string& m, const std::string& d, std::size_t b,
                GpuState s = GpuState::kWarm) const {
        return at(m, d, b, s).throughput_bps;
    }
    double lat(const std::string& m, const std::string& d, std::size_t b,
               GpuState s = GpuState::kWarm) const {
        return at(m, d, b, s).latency_s;
    }
    double energy(const std::string& m, const std::string& d, std::size_t b,
                  GpuState s = GpuState::kWarm) const {
        return at(m, d, b, s).energy_j;
    }
};

const Sweep& sweep() {
    static const Sweep s;
    return s;
}

// ---- Fig. 3(a): Simple / Iris ----------------------------------------------

TEST(Fig3Simple, CpuBestUpTo2048AgainstWarmGpu) {
    for (std::size_t b = 2; b <= 2048; b *= 2) {
        EXPECT_GE(sweep().tput("simple", kCpu, b), sweep().tput("simple", kGtx, b)) << b;
    }
    // And the warm GPU takes over within one binary order.
    EXPECT_GT(sweep().tput("simple", kGtx, 8192), sweep().tput("simple", kCpu, 8192));
}

TEST(Fig3Simple, CpuBeatsIdleGpuAtEverySampleSize) {
    for (const std::size_t b : sweep().batches) {
        EXPECT_GT(sweep().tput("simple", kCpu, b),
                  sweep().tput("simple", kGtx, b, GpuState::kIdle))
            << b;
    }
}

TEST(Fig3Simple, PeakThroughputMagnitudes) {
    // Paper: CPU up to ~15 Gbit/s, GPU up to ~20 Gbit/s on its best model.
    const double cpu_peak = sweep().tput("simple", kCpu, 256U << 10);
    const double gtx_peak = sweep().tput("simple", kGtx, 256U << 10);
    EXPECT_GT(cpu_peak, 10e9);
    EXPECT_LT(cpu_peak, 20e9);
    EXPECT_GT(gtx_peak, 15e9);
    EXPECT_LT(gtx_peak, 30e9);
}

// ---- Fig. 3(b): Mnist-Small -------------------------------------------------

TEST(Fig3MnistSmall, IdleGpuLatencyGrowsBetterThanLinearPast512) {
    // Doubling the batch less than doubles the idle-start latency while the
    // clock ramps (the effect the paper highlights for sizes > 512).
    for (std::size_t b = 512; b <= 8192; b *= 2) {
        const double l1 = sweep().lat("mnist-small", kGtx, b, GpuState::kIdle);
        const double l2 = sweep().lat("mnist-small", kGtx, 2 * b, GpuState::kIdle);
        EXPECT_LT(l2 / l1, 1.95) << b;
    }
}

TEST(Fig3MnistSmall, StateIrrelevantFrom64K) {
    for (std::size_t b = 64U << 10; b <= 256U << 10; b *= 2) {
        const double warm = sweep().lat("mnist-small", kGtx, b, GpuState::kWarm);
        const double idle = sweep().lat("mnist-small", kGtx, b, GpuState::kIdle);
        EXPECT_LT(idle / warm, 1.35) << b;
    }
}

TEST(Fig3MnistSmall, StateMattersAtSmallSizes) {
    const double warm = sweep().lat("mnist-small", kGtx, 32, GpuState::kWarm);
    const double idle = sweep().lat("mnist-small", kGtx, 32, GpuState::kIdle);
    EXPECT_GT(idle / warm, 3.0);
}

TEST(Fig3MnistSmall, CpuWindowWiderAgainstIdleGpuThanWarm) {
    // Latency: the batch range where the CPU leads is strictly larger when
    // the GPU starts idle (paper: up to 32 idle vs up to 4 warm).
    auto crossover = [&](GpuState state) {
        for (const std::size_t b : sweep().batches) {
            if (sweep().lat("mnist-small", kGtx, b, state) <
                sweep().lat("mnist-small", kCpu, b, state)) {
                return b;
            }
        }
        return std::size_t{1} << 60;
    };
    const std::size_t warm_cross = crossover(GpuState::kWarm);
    const std::size_t idle_cross = crossover(GpuState::kIdle);
    EXPECT_LT(warm_cross, idle_cross);
    EXPECT_LE(warm_cross, 64U);    // paper: 4 (we land within one order)
    EXPECT_LE(idle_cross, 512U);   // paper: 32
    EXPECT_GE(idle_cross, 32U);
}

// ---- Fig. 3(c): Mnist-Deep --------------------------------------------------

TEST(Fig3MnistDeep, CpuBestUpTo8RegardlessOfGpuState) {
    for (std::size_t b = 2; b <= 8; b *= 2) {
        EXPECT_GT(sweep().tput("mnist-deep", kCpu, b),
                  sweep().tput("mnist-deep", kGtx, b, GpuState::kWarm))
            << b;
        EXPECT_GT(sweep().tput("mnist-deep", kCpu, b),
                  sweep().tput("mnist-deep", kGtx, b, GpuState::kIdle))
            << b;
    }
    EXPECT_GT(sweep().tput("mnist-deep", kGtx, 16), sweep().tput("mnist-deep", kCpu, 16));
}

TEST(Fig3MnistDeep, WeightStreamingMutesStateEffect) {
    // Mnist-Deep is memory-bound: the idle/warm gap is far smaller than on
    // the compute-bound models at the same batch size.
    const double deep_gap = sweep().lat("mnist-deep", kGtx, 8, GpuState::kIdle) /
                            sweep().lat("mnist-deep", kGtx, 8, GpuState::kWarm);
    const double small_gap = sweep().lat("mnist-small", kGtx, 8, GpuState::kIdle) /
                             sweep().lat("mnist-small", kGtx, 8, GpuState::kWarm);
    EXPECT_LT(deep_gap, small_gap * 0.75);
}

// ---- Fig. 3(d): Mnist-CNN ---------------------------------------------------

TEST(Fig3MnistCnn, LatencyCrossoversWarmVsIdle) {
    // Paper: CPU best up to 32 (warm GPU) and up to 256 (idle GPU).
    EXPECT_LT(sweep().lat("mnist-cnn", kCpu, 8), sweep().lat("mnist-cnn", kGtx, 8));
    EXPECT_GT(sweep().lat("mnist-cnn", kCpu, 64), sweep().lat("mnist-cnn", kGtx, 64));
    EXPECT_LT(sweep().lat("mnist-cnn", kCpu, 32, GpuState::kIdle),
              sweep().lat("mnist-cnn", kGtx, 32, GpuState::kIdle));
    EXPECT_GT(sweep().lat("mnist-cnn", kCpu, 512, GpuState::kIdle),
              sweep().lat("mnist-cnn", kGtx, 512, GpuState::kIdle));
}

// ---- Fig. 3(e): Cifar-10 ----------------------------------------------------

TEST(Fig3Cifar, CpuBestUpTo8AgainstWarmGpu) {
    for (std::size_t b = 2; b <= 8; b *= 2) {
        EXPECT_GT(sweep().tput("cifar-10", kCpu, b), sweep().tput("cifar-10", kGtx, b)) << b;
    }
    EXPECT_GT(sweep().tput("cifar-10", kGtx, 16), sweep().tput("cifar-10", kCpu, 16));
}

TEST(Fig3Cifar, CpuWindowExtendsAgainstIdleGpu) {
    // Paper: up to 128 against an idle-start GPU.
    for (std::size_t b = 2; b <= 16; b *= 2) {
        EXPECT_GT(sweep().tput("cifar-10", kCpu, b),
                  sweep().tput("cifar-10", kGtx, b, GpuState::kIdle))
            << b;
    }
    EXPECT_GT(sweep().tput("cifar-10", kGtx, 256, GpuState::kIdle),
              sweep().tput("cifar-10", kCpu, 256, GpuState::kIdle));
}

// ---- cross-cutting observations --------------------------------------------

TEST(Characterization, IgpuDrawsLowestPowerEverywhere) {
    for (const auto& p : sweep().points) {
        if (p.device_name != kIgpu) continue;
        const auto& cpu = sweep().at(p.model_name, kCpu, p.batch, p.gpu_state);
        const auto& gtx = sweep().at(p.model_name, kGtx, p.batch, p.gpu_state);
        EXPECT_LT(p.avg_power_w, cpu.avg_power_w) << p.model_name << " " << p.batch;
        EXPECT_LT(p.avg_power_w, gtx.avg_power_w) << p.model_name << " " << p.batch;
    }
}

TEST(Characterization, IdleStartAlwaysCostsMoreEnergy) {
    for (const auto& model : {"simple", "mnist-small", "mnist-deep", "mnist-cnn", "cifar-10"}) {
        for (const std::size_t b : sweep().batches) {
            EXPECT_GT(sweep().energy(model, kGtx, b, GpuState::kIdle),
                      sweep().energy(model, kGtx, b, GpuState::kWarm) * 0.999)
                << model << " " << b;
        }
    }
}

TEST(Characterization, StateAffectsThroughputSeverely) {
    // Paper: differences up to ~7x. Require at least 4x somewhere.
    double worst = 1.0;
    for (const auto& p : sweep().points) {
        if (p.device_name != kGtx || p.gpu_state != GpuState::kWarm) continue;
        const auto& idle = sweep().at(p.model_name, kGtx, p.batch, GpuState::kIdle);
        worst = std::max(worst, p.throughput_bps / idle.throughput_bps);
    }
    EXPECT_GT(worst, 4.0);
}

TEST(Characterization, ThroughputMonotoneNondecreasingInBatch) {
    // "Performance becomes better when the sample size increases."
    for (const auto& model : {"simple", "mnist-small", "mnist-deep", "mnist-cnn", "cifar-10"}) {
        for (const auto& dev : {kCpu, kIgpu, kGtx}) {
            double prev = 0.0;
            for (const std::size_t b : sweep().batches) {
                const double t = sweep().tput(model, dev, b);
                EXPECT_GE(t, prev * 0.98) << model << " " << dev << " " << b;
                prev = t;
            }
        }
    }
}

TEST(Characterization, NoDeviceRulesThemAll) {
    // The motivating observation: the best device varies across
    // (model, batch, state) for every policy.
    for (const Policy policy :
         {Policy::kMaxThroughput, Policy::kMinLatency, Policy::kMinEnergy}) {
        std::map<std::string, int> wins;
        for (const auto& model :
             {"simple", "mnist-small", "mnist-deep", "mnist-cnn", "cifar-10"}) {
            for (const std::size_t b : sweep().batches) {
                for (const GpuState state : {GpuState::kIdle, GpuState::kWarm}) {
                    std::vector<SweepPoint> rows;
                    for (const auto& dev : {kCpu, kIgpu, kGtx}) {
                        rows.push_back(sweep().at(model, dev, b, state));
                    }
                    ++wins[best_device(rows, policy)];
                }
            }
        }
        EXPECT_GE(wins.size(), 2U) << policy_name(policy);
    }
}

TEST(Characterization, EnergyGridUsesAllThreeDevices) {
    std::map<std::string, int> wins;
    for (const auto& model : {"simple", "mnist-small", "mnist-deep", "mnist-cnn", "cifar-10"}) {
        for (const std::size_t b : sweep().batches) {
            std::vector<SweepPoint> rows;
            for (const auto& dev : {kCpu, kIgpu, kGtx}) {
                rows.push_back(sweep().at(model, dev, b, GpuState::kWarm));
            }
            ++wins[best_device(rows, Policy::kMinEnergy)];
        }
    }
    EXPECT_EQ(wins.size(), 3U);
    EXPECT_GT(wins[kIgpu], 0);
    EXPECT_GT(wins[kGtx], 0);
    EXPECT_GT(wins[kCpu], 0);
}

TEST(Fig4MnistDeep, EnergyCrossoverIgpuToGtx) {
    // Paper Fig. 4(c): iGPU most efficient at small sizes, dGPU from 16 up.
    for (std::size_t b = 2; b <= 8; b *= 2) {
        EXPECT_LT(sweep().energy("mnist-deep", kIgpu, b),
                  sweep().energy("mnist-deep", kGtx, b))
            << b;
    }
    for (std::size_t b = 512; b <= (256U << 10); b *= 4) {
        EXPECT_LT(sweep().energy("mnist-deep", kGtx, b),
                  sweep().energy("mnist-deep", kIgpu, b))
            << b;
    }
}

TEST(Fig4MnistSmall, WarmGpuWinsMidRangeIdleLoses) {
    // Paper Fig. 4(b): in the mid range the warm GPU is the most efficient
    // device while an idle-start GPU hands the win to the iGPU.
    for (const std::size_t b : {2048U, 8192U}) {
        EXPECT_LT(sweep().energy("mnist-small", kGtx, b, GpuState::kWarm),
                  sweep().energy("mnist-small", kIgpu, b, GpuState::kWarm))
            << b;
        EXPECT_LT(sweep().energy("mnist-small", kIgpu, b, GpuState::kIdle),
                  sweep().energy("mnist-small", kGtx, b, GpuState::kIdle))
            << b;
    }
}

TEST(Fig4, CpuIsOftenTheWorstEnergyChoice) {
    int cpu_worst = 0;
    int total = 0;
    for (const auto& model : {"mnist-small", "mnist-deep", "mnist-cnn", "cifar-10"}) {
        for (std::size_t b = 512; b <= (256U << 10); b *= 2) {
            const double cpu = sweep().energy(model, kCpu, b);
            const double igpu = sweep().energy(model, kIgpu, b);
            const double gtx = sweep().energy(model, kGtx, b);
            ++total;
            if (cpu > igpu && cpu > gtx) ++cpu_worst;
        }
    }
    EXPECT_GT(cpu_worst, total / 2);
}

}  // namespace
