// Server: the concurrent serving front-end. Clients submit() payload-carrying
// requests and receive futures; N worker threads (on an owned ThreadPool)
// drain the bounded queue through the BatchAggregator, consult the paper's
// OnlineScheduler for a device, execute via Dispatcher::run_on, and complete
// the futures. Admission control sheds load explicitly when the queue fills,
// so offered load beyond saturation degrades into rejections instead of
// unbounded latency.
//
// Time is injected (mw::Clock): benches and demos pass a WallClock, tests a
// ManualClock — serve code itself never reads a wall clock (enforced by
// mw-lint's `wall-clock-in-serve` rule). The clock's "now" doubles as the
// simulated timestamp handed to the scheduler and the device layer.
//
// Thread safety: submit(), stats(), queue_depth() may be called from any
// thread while the server runs. The OnlineScheduler is not internally
// synchronised, so the server serialises decide() behind a mutex — callers
// must not drive the same scheduler (submit/run/retrain) concurrently from
// outside while the server is running.
#pragma once

#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <string_view>
#include <vector>

#include "common/epoch_cell.hpp"
#include "common/sync.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "fault/health.hpp"
#include "graph/dag.hpp"
#include "graph/schedule.hpp"
#include "sched/scheduler.hpp"
#include "serve/admission.hpp"
#include "serve/batcher.hpp"
#include "serve/request_pool.hpp"
#include "serve/request_queue.hpp"
#include "serve/sharded_queue.hpp"
#include "serve/stats.hpp"

namespace mw::serve {

/// Resilient-dispatch knobs. Off by default: a server without resilience
/// behaves exactly as before mw::fault existed.
struct ResilienceConfig {
    bool enabled = false;
    /// Retry ladder for faulted dispatches (next-best device, capped
    /// exponential backoff on the simulated timeline).
    sched::RetryPolicy retry{};
    /// Per-device circuit breaker fed back into decide() as an exclusion
    /// set; counters land in the server's metrics registry as mw_fault_*.
    fault::HealthConfig health{};
    /// Execute-timeout for the hedged re-dispatch: a batch whose execute
    /// latency exceeds this gets one duplicate dispatch on the next-best
    /// device, and the earlier finisher wins. 0 disables hedging.
    double hedge_timeout_s = 0.0;
};

/// Lock-free hot-path knobs (DESIGN.md §15). The hot path activates when
/// `enabled` AND the admission policy is kRejectNewest — the eviction-based
/// policies (kRejectOldest, kDeadlineShed) need to reach into the queue's
/// middle, which rings cannot do, so those configurations keep the legacy
/// mutexed RequestQueue automatically.
struct HotPathConfig {
    bool enabled = true;
    /// HotRequest arena size; 0 sizes it from queue capacity + worker-held
    /// batches + slack. Exhaustion sheds (kRejectedFull), never allocates.
    std::size_t pool_capacity = 0;
    /// Per-worker executed batches between scheduler-snapshot republishes
    /// (bounds how stale the GPU-warm feature and the model table get).
    std::size_t snapshot_refresh_batches = 64;
    /// Per-worker executed batches between stats-shard flushes into the
    /// shared registry. The default (1) flushes once per batch, before its
    /// responses publish — stats() visibility matches the legacy path while
    /// still collapsing per-request counter RMWs into per-batch ones.
    /// Larger values amortise further (the contention bench uses this), at
    /// the cost of deltas staying invisible to snapshots until the next
    /// flush; totals are exact after stop() either way.
    std::size_t stats_flush_batches = 1;
};

struct ServerConfig {
    std::size_t workers = 2;         ///< draining threads (owned pool size)
    std::size_t queue_capacity = 256;
    AdmissionConfig admission{};
    BatchConfig batching{};
    HotPathConfig hot_path{};
    /// Finish everything queued before stop() returns; false completes
    /// still-queued requests with RequestStatus::kShutdown instead.
    bool drain_on_stop = true;
    /// Idle worker re-check period, real time (queue-pop timeout slice).
    double worker_poll_s = 0.01;
    /// Start workers in the constructor. Tests set this false to stage a
    /// queue deterministically before any worker runs, then call start().
    bool start_on_construction = true;
    ResilienceConfig resilience{};
    /// Run the independent schedule verifier over every DAG plan before and
    /// after execution (run_graph throws StateError on an infeasible plan —
    /// a planner bug — instead of silently booking impossible work).
    bool verify_graph_plans = true;
};

/// One-shot lifecycle: construct (optionally start()), serve, stop(); a
/// stopped server cannot be restarted.
class Server {
public:
    Server(sched::OnlineScheduler& scheduler, sched::Dispatcher& dispatcher,
           const Clock& clock, ServerConfig config = {});
    ~Server();

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /// Hand a request to the server; the future resolves with the outcome
    /// (kCompleted with outputs, or a rejection/shed/shutdown status).
    /// Payload must be rank-2 (samples, sample_elems); the model must be
    /// registered with the Dispatcher and deployed.
    std::future<Response> submit(InferenceRequest request);

    /// What submit_ticket() resolved to at admission time.
    struct SubmitOutcome {
        bool admitted = false;
        RequestStatus status = RequestStatus::kRejectedFull;  ///< when !admitted
        Ticket ticket;  ///< valid when admitted
    };

    /// Zero-allocation submission (hot path only; requires the lock-free
    /// path to be active, see HotPathConfig). The payload is copied into a
    /// pooled arena node; poll try_result() for completion and release()
    /// the ticket when done with the response. Steady state performs no
    /// heap allocation from submit to release.
    [[nodiscard]] SubmitOutcome submit_ticket(std::string_view model_name,
                                              std::span<const float> payload,
                                              std::size_t samples,
                                              sched::Policy policy,
                                              double slo_s = 0.0);

    /// Non-blocking: true when the ticket's response is ready, filling
    /// `result` (outputs/measurement views stay valid until release()).
    /// A stale or foreign ticket throws StateError.
    [[nodiscard]] bool try_result(const Ticket& ticket, TicketResult& result);

    /// Return the ticket's node to the arena. Call exactly once per
    /// admitted ticket, after try_result() returned true.
    void release(const Ticket& ticket);

    /// True when the lock-free hot path is active (see HotPathConfig).
    [[nodiscard]] bool hot_path_active() const { return hot_active_; }

    /// Arena occupancy (hot path only; 0 otherwise) — the arena-stats test
    /// asserts steady state never exhausts or grows the pool.
    [[nodiscard]] std::size_t pool_live() const {
        return request_pool_ ? request_pool_->live() : 0;
    }
    [[nodiscard]] std::size_t pool_capacity() const {
        return request_pool_ ? request_pool_->capacity() : 0;
    }

    /// Outcome of one DAG execution through the serving tier.
    struct GraphRunResult {
        graph::Schedule planned;   ///< planner output, re-timed to submit time
        graph::Schedule executed;  ///< what the devices actually booked
        bool verified = false;     ///< both schedules passed the verifier
    };

    /// Plan, verify and execute an operator DAG at the server's current
    /// time (policy kMinEnergy optimises energy, others makespan). Planning
    /// happens OUTSIDE scheduler_mutex_: the planner's cache lock ranks
    /// BELOW kScheduler by design, and plan_graph only touches internally
    /// synchronised state (planner cache, registry, devices). Safe to call
    /// while the server is serving batch traffic; DAG steps and batches
    /// interleave on the same device timelines.
    [[nodiscard]] GraphRunResult run_graph(const graph::Graph& graph, sched::Policy policy);

    void start();  ///< idempotent; throws after stop()
    void stop();   ///< idempotent; drains or fails-over queued requests

    [[nodiscard]] bool running() const {
        return running_.load(std::memory_order_acquire);
    }
    [[nodiscard]] double now() const { return clock_->now(); }
    [[nodiscard]] std::size_t queue_depth() const {
        return hot_active_
                   ? hot_queue_->size() + stashed_total_.load(std::memory_order_acquire)
                   : queue_.size();
    }
    [[nodiscard]] const ServerConfig& config() const { return config_; }

    /// Counters + percentiles + queue gauges, readable while serving.
    [[nodiscard]] ServerSnapshot stats() const;

    /// Every serving series by name, for the obs exporters (Prometheus/CSV).
    [[nodiscard]] const obs::MetricsRegistry& metrics() const {
        return stats_.registry();
    }

    /// The per-device health tracker / circuit breaker; nullptr unless
    /// resilience is enabled.
    [[nodiscard]] fault::DeviceHealthTracker* health() { return health_.get(); }
    [[nodiscard]] const fault::DeviceHealthTracker* health() const {
        return health_.get();
    }

private:
    /// What one batch dispatch produced, whichever path (plain or
    /// resilient) ran it.
    struct DispatchResult {
        device::InferenceResult result;
        std::string served_by;     ///< device that produced `result`
        std::size_t attempts = 1;  ///< retry-ladder tries consumed
        bool hedged = false;       ///< a duplicate hedge dispatch was issued
    };

    void worker_loop();
    void execute_batch(PendingBatch batch);

    // --- lock-free hot path (server.cpp) ---
    struct HotWorker;  ///< per-worker state: stash, scratch, stats shards
    void hot_worker_loop(std::size_t worker_index);
    HotRequest* hot_next_leader(HotWorker& w);
    void hot_gather(HotWorker& w, HotRequest* leader);
    void hot_execute(HotWorker& w);
    void hot_complete_terminal(HotRequest* node, RequestStatus status,
                               const char* error = nullptr);
    void hot_flush_if_due(HotWorker& w);
    void hot_refresh_snapshot();

    /// The resilient dispatch path: health-partition the devices, decide
    /// with exclusions, retry across candidates, hedge stragglers. May throw
    /// (exhausted retries, every device excluded) — the caller fails the
    /// batch exactly as on the plain path.
    DispatchResult dispatch_resilient(const sched::ScheduleRequest& schedule_request,
                                      const Tensor& input, double dispatch_now,
                                      const device::SubmitOptions& submit_options);

    ServerConfig config_;
    const Clock* clock_;
    sched::OnlineScheduler* scheduler_ MW_PT_GUARDED_BY(scheduler_mutex_);
    sched::Dispatcher* dispatcher_;

    ServerStats stats_;
    RequestQueue queue_;
    AdmissionController admission_;
    BatchAggregator batcher_;
    std::unique_ptr<fault::DeviceHealthTracker> health_;  ///< resilience only

    // Lock-free hot path (null when inactive; see HotPathConfig).
    bool hot_active_ = false;
    std::unique_ptr<RequestPool> request_pool_;
    std::unique_ptr<ShardedRequestQueue> hot_queue_;
    std::unique_ptr<EpochCell<sched::SchedulerSnapshot>> snapshot_cell_;
    Atomic<std::size_t> submit_shard_{0};    ///< round-robin scatter cursor
    Atomic<bool> snapshot_claim_{false};     ///< one refresher at a time
    Atomic<std::size_t> stashed_total_{0};   ///< worker-stashed (still queued) nodes

    Mutex scheduler_mutex_{LockRank::kScheduler};  ///< OnlineScheduler is not thread-safe
    Atomic<std::uint64_t> next_id_{1};
    Atomic<std::size_t> inflight_{0};
    Atomic<bool> running_{false};
    Atomic<bool> stopped_{false};

    std::unique_ptr<ThreadPool> pool_;
    std::vector<std::future<void>> workers_;
};

}  // namespace mw::serve
