#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>

#include "common/error.hpp"

namespace mw {

Tensor::Tensor(Shape shape)
    : shape_(shape), data_(aligned_alloc_floats(shape.numel())), capacity_(shape.numel()) {
    std::memset(data_.get(), 0, numel() * sizeof(float));
}

Tensor::Tensor(const Tensor& other)
    : shape_(other.shape_),
      data_(aligned_alloc_floats(other.numel())),
      capacity_(other.numel()) {
    if (other.numel() > 0) {
        std::memcpy(data_.get(), other.data_.get(), other.numel() * sizeof(float));
    }
}

Tensor& Tensor::operator=(const Tensor& other) {
    if (this == &other) return *this;
    Tensor copy(other);
    *this = std::move(copy);
    return *this;
}

Tensor::Tensor(Tensor&& other) noexcept
    : shape_(std::move(other.shape_)), data_(std::move(other.data_)), capacity_(other.capacity_) {
    other.shape_ = Shape{};
    other.capacity_ = 0;
}

Tensor& Tensor::operator=(Tensor&& other) noexcept {
    if (this == &other) return *this;
    shape_ = std::move(other.shape_);
    data_ = std::move(other.data_);
    capacity_ = other.capacity_;
    other.shape_ = Shape{};
    other.capacity_ = 0;
    return *this;
}

void Tensor::resize(const Shape& shape) {
    const std::size_t needed = shape.numel();
    if (needed > capacity_) {
        data_ = aligned_alloc_floats(needed);
        capacity_ = needed;
    }
    shape_ = shape;
}

float& Tensor::at(std::size_t i) {
    MW_CHECK(i < numel(), "Tensor flat index out of range");
    return data_[i];
}

float Tensor::at(std::size_t i) const {
    MW_CHECK(i < numel(), "Tensor flat index out of range");
    return data_[i];
}

float& Tensor::at(std::size_t r, std::size_t c) {
    MW_CHECK(shape_.rank() == 2, "2-D access requires a rank-2 tensor");
    MW_CHECK(r < shape_[0] && c < shape_[1], "Tensor 2-D index out of range");
    return data_[r * shape_[1] + c];
}

float Tensor::at(std::size_t r, std::size_t c) const {
    MW_CHECK(shape_.rank() == 2, "2-D access requires a rank-2 tensor");
    MW_CHECK(r < shape_[0] && c < shape_[1], "Tensor 2-D index out of range");
    return data_[r * shape_[1] + c];
}

std::span<const float> Tensor::row(std::size_t r) const {
    MW_CHECK(shape_.rank() == 2, "row() requires a rank-2 tensor");
    MW_CHECK(r < shape_[0], "row out of range");
    return {data_.get() + r * shape_[1], shape_[1]};
}

std::span<float> Tensor::row(std::size_t r) {
    MW_CHECK(shape_.rank() == 2, "row() requires a rank-2 tensor");
    MW_CHECK(r < shape_[0], "row out of range");
    return {data_.get() + r * shape_[1], shape_[1]};
}

void Tensor::fill(float value) { std::fill_n(data_.get(), numel(), value); }

void Tensor::fill_normal(Rng& rng, float mean, float stddev) {
    for (std::size_t i = 0; i < numel(); ++i) {
        (*this)[i] = static_cast<float>(rng.normal(mean, stddev));
    }
}

void Tensor::fill_uniform(Rng& rng, float lo, float hi) {
    for (std::size_t i = 0; i < numel(); ++i) {
        (*this)[i] = static_cast<float>(rng.uniform(lo, hi));
    }
}

float Tensor::max_abs_diff(const Tensor& other) const {
    MW_CHECK(shape_ == other.shape_, "max_abs_diff shape mismatch");
    float worst = 0.0F;
    for (std::size_t i = 0; i < numel(); ++i) {
        worst = std::max(worst, std::abs((*this)[i] - other[i]));
    }
    return worst;
}

}  // namespace mw
