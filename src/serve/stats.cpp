#include "serve/stats.hpp"

#include <algorithm>
#include <cmath>

namespace mw::serve {

void LatencyHistogram::add(double seconds) {
    const double clamped = std::max(seconds, kMinS);
    const double decades = std::log10(clamped / kMinS);
    const auto raw = static_cast<std::size_t>(decades * kBucketsPerDecade);
    ++buckets_[std::min(raw, kBuckets - 1)];
    ++count_;
}

double LatencyHistogram::percentile(double p) const {
    if (count_ == 0) return 0.0;
    const double clamped_p = std::clamp(p, 0.0, 100.0);
    const auto rank = static_cast<std::uint64_t>(
        std::ceil(clamped_p / 100.0 * static_cast<double>(count_)));
    const std::uint64_t target = std::max<std::uint64_t>(rank, 1);
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
        cumulative += buckets_[i];
        if (cumulative >= target) {
            // Geometric midpoint of the bucket.
            const double exponent =
                (static_cast<double>(i) + 0.5) / kBucketsPerDecade;
            return kMinS * std::pow(10.0, exponent);
        }
    }
    return kMinS * std::pow(10.0, static_cast<double>(kDecades));
}

PolicyCounters ServerSnapshot::totals() const {
    PolicyCounters t;
    for (const auto& p : policy) {
        const PolicyCounters& c = p.counters;
        t.submitted += c.submitted;
        t.admitted += c.admitted;
        t.rejected_full += c.rejected_full;
        t.evicted += c.evicted;
        t.shed += c.shed;
        t.completed += c.completed;
        t.failed += c.failed;
        t.shutdown += c.shutdown;
        t.batches_executed += c.batches_executed;
        t.coalesced_requests += c.coalesced_requests;
        t.samples += c.samples;
        t.bytes_in += c.bytes_in;
        t.energy_j += c.energy_j;
    }
    return t;
}

void ServerStats::on_submitted(sched::Policy policy) {
    const MutexLock lock(mutex_);
    ++per_policy_[lane_of(policy)].counters.submitted;
}

void ServerStats::on_admitted(sched::Policy policy) {
    const MutexLock lock(mutex_);
    ++per_policy_[lane_of(policy)].counters.admitted;
}

void ServerStats::on_rejected_full(sched::Policy policy) {
    const MutexLock lock(mutex_);
    ++per_policy_[lane_of(policy)].counters.rejected_full;
}

void ServerStats::on_evicted(sched::Policy policy) {
    const MutexLock lock(mutex_);
    ++per_policy_[lane_of(policy)].counters.evicted;
}

void ServerStats::on_shed(sched::Policy policy) {
    const MutexLock lock(mutex_);
    ++per_policy_[lane_of(policy)].counters.shed;
}

void ServerStats::on_shutdown(sched::Policy policy) {
    const MutexLock lock(mutex_);
    ++per_policy_[lane_of(policy)].counters.shutdown;
}

void ServerStats::on_failed(sched::Policy policy) {
    const MutexLock lock(mutex_);
    ++per_policy_[lane_of(policy)].counters.failed;
}

void ServerStats::on_batch_executed(sched::Policy policy,
                                    std::size_t coalesced_requests) {
    const MutexLock lock(mutex_);
    auto& c = per_policy_[lane_of(policy)].counters;
    ++c.batches_executed;
    c.coalesced_requests += coalesced_requests;
}

void ServerStats::on_completed(sched::Policy policy, double queue_s, double execute_s,
                               std::size_t samples, double bytes_in, double energy_j,
                               std::size_t coalesced) {
    const MutexLock lock(mutex_);
    auto& pp = per_policy_[lane_of(policy)];
    ++pp.counters.completed;
    pp.counters.samples += static_cast<double>(samples);
    pp.counters.bytes_in += bytes_in;
    pp.counters.energy_j += energy_j;
    pp.queue_hist.add(queue_s);
    // One histogram entry per request, so tail percentiles reflect what
    // clients saw (a slow coalesced batch hurts every member).
    pp.execute_hist.add(execute_s);
    (void)coalesced;
}

ServerSnapshot ServerStats::snapshot() const {
    const MutexLock lock(mutex_);
    ServerSnapshot snap;
    for (std::size_t i = 0; i < kPolicyLanes; ++i) {
        const PerPolicy& pp = per_policy_[i];
        PolicySnapshot& out = snap.policy[i];
        out.counters = pp.counters;
        out.queue_p50_s = pp.queue_hist.percentile(50.0);
        out.queue_p95_s = pp.queue_hist.percentile(95.0);
        out.queue_p99_s = pp.queue_hist.percentile(99.0);
        out.execute_p50_s = pp.execute_hist.percentile(50.0);
        out.execute_p95_s = pp.execute_hist.percentile(95.0);
        out.execute_p99_s = pp.execute_hist.percentile(99.0);
    }
    return snap;
}

}  // namespace mw::serve
