#include "nn/flatten.hpp"

#include <cstring>

#include "common/error.hpp"

namespace mw::nn {

std::string Flatten::describe() const { return "flatten"; }

Shape Flatten::output_shape(const Shape& input) const {
    MW_CHECK(input.rank() == 4, "Flatten expects rank-4 input");
    return Shape{input[0], input[1] * input[2] * input[3]};
}

void Flatten::forward(const Tensor& in, Tensor& out, ThreadPool* pool) const {
    (void)pool;
    MW_CHECK(out.shape() == output_shape(in.shape()), "Flatten output tensor has wrong shape");
    std::memcpy(out.data(), in.data(), in.numel() * sizeof(float));
}

void Flatten::backward(const Tensor& in, const Tensor& out, const Tensor& dout, Tensor& din,
                       ThreadPool* pool) {
    (void)out;
    (void)pool;
    MW_CHECK(din.shape() == in.shape(), "Flatten backward din shape mismatch");
    MW_CHECK(dout.numel() == din.numel(), "Flatten backward size mismatch");
    std::memcpy(din.data(), dout.data(), dout.numel() * sizeof(float));
}

LayerCost Flatten::cost(const Shape& input) const {
    LayerCost c;
    const double bytes = static_cast<double>(input.numel()) * sizeof(float);
    c.bytes_in = bytes;
    c.bytes_out = bytes;
    c.work_items = static_cast<double>(input[0]);
    c.kernel_launches = 0;  // fused into the adjoining kernels on-device
    return c;
}

}  // namespace mw::nn
