// mw-analyze: golden-fixture self test (mw-lint --self-test style). Each
// subdirectory of the fixtures dir is analyzed as its own root; expected
// findings are declared inline as `expect(<check>)` comments and compared
// exactly — extra findings fail the same as missing ones.
#pragma once

#include <string>

namespace mwa {

/// Returns 0 when every fixture matches its expectations, 1 otherwise.
int run_self_test(const std::string& fixtures_dir);

}  // namespace mwa
