// Labelled datasets and split utilities.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "tensor/tensor.hpp"

namespace mw::data {

/// A labelled classification dataset. `x` is (n, features...) with the
/// feature layout matching the consuming model's input shape; `y` holds
/// class indices.
struct Dataset {
    Tensor x;
    std::vector<std::size_t> y;
    std::size_t num_classes = 0;

    [[nodiscard]] std::size_t size() const { return y.size(); }
    [[nodiscard]] std::size_t sample_elems() const {
        return y.empty() ? 0 : x.numel() / y.size();
    }
};

/// Deterministically shuffle and split into train/test by `test_fraction`.
struct SplitResult {
    Dataset train;
    Dataset test;
};
SplitResult train_test_split(const Dataset& full, double test_fraction, Rng& rng);

/// Per-class sample counts.
std::vector<std::size_t> class_histogram(const Dataset& d);

/// Extract rows [begin, end) as a batch tensor shaped (count, features...).
Tensor batch_of(const Dataset& d, std::size_t begin, std::size_t count);

}  // namespace mw::data
