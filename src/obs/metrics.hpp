// MetricsRegistry: one registration API for every named counter, gauge, and
// histogram in the system. Components register their series once (a locked
// map insert) and then update through stable references whose operations are
// single atomic RMWs — the hot path never touches the registry lock. The
// registry is the export surface: Prometheus-style text and CSV dumps walk
// every registered series in name order (see obs/export.hpp).
//
// This absorbs the serving layer's former ad-hoc plumbing: ServerStats'
// per-policy counters and latency histograms are registry series now, so the
// bench harness, the demo, and any future component read one catalogue.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/sync.hpp"

namespace mw::obs {

/// Monotone integer counter. All operations are lock-free.
class Counter {
public:
    void inc(std::uint64_t n = 1) noexcept {
        value_.fetch_add(n, std::memory_order_relaxed);  // relaxed: monotonic stat, no data published
    }
    [[nodiscard]] std::uint64_t value() const noexcept {
        return value_.load(std::memory_order_relaxed);  // relaxed: approximate read is fine
    }

private:
    Atomic<std::uint64_t> value_{0};
};

/// Double-valued gauge (set or accumulate). Lock-free; add() is a CAS loop
/// because atomic<double>::fetch_add is not universally lock-free pre-C++20
/// library support.
class Gauge {
public:
    void set(double v) noexcept {
        value_.store(v, std::memory_order_relaxed);  // relaxed: scalar value, no data published
    }
    void add(double delta) noexcept {
        double cur = value_.load(std::memory_order_relaxed);  // relaxed: CAS seed, retried
        while (!value_.compare_exchange_weak(
            cur, cur + delta, std::memory_order_relaxed)) {  // relaxed: scalar accumulate
        }
    }
    [[nodiscard]] double value() const noexcept {
        return value_.load(std::memory_order_relaxed);  // relaxed: approximate read is fine
    }

private:
    Atomic<double> value_{0.0};
};

/// Fixed log-spaced histogram: 1 us .. 1000 s, 20 buckets/decade. Cheap
/// enough to update on every request completion; percentiles interpolate to
/// the geometric midpoint of the winning bucket (max relative error ~12%,
/// one bucket width). Updates are lock-free; a concurrent percentile() sees
/// some consistent prefix of the adds.
class LogHistogram {
public:
    static constexpr double kMinS = 1e-6;
    static constexpr std::size_t kBucketsPerDecade = 20;
    static constexpr std::size_t kDecades = 9;
    static constexpr std::size_t kBuckets = kBucketsPerDecade * kDecades;

    void add(double seconds) noexcept;

    [[nodiscard]] std::size_t count() const noexcept {
        return count_.load(std::memory_order_relaxed);  // relaxed: approximate read is fine
    }

    /// p in [0, 100]. Returns quiet NaN when the histogram is empty — an
    /// empty series must not be confusable with a genuine sub-microsecond
    /// measurement (renderers print a dash; see format_duration).
    [[nodiscard]] double percentile(double p) const noexcept;

private:
    std::array<Atomic<std::uint64_t>, kBuckets> buckets_{};
    Atomic<std::size_t> count_{0};
};

enum class MetricKind { kCounter, kGauge, kHistogram };

[[nodiscard]] const char* metric_kind_name(MetricKind kind) noexcept;

/// Thread safety: registration (counter()/gauge()/histogram()) and the
/// visitors may be called concurrently from any thread; returned references
/// stay valid for the registry's lifetime.
class MetricsRegistry {
public:
    MetricsRegistry() = default;

    MetricsRegistry(const MetricsRegistry&) = delete;
    MetricsRegistry& operator=(const MetricsRegistry&) = delete;

    /// Create-or-get. A name registers exactly one kind; re-registering the
    /// same name as a different kind throws.
    Counter& counter(const std::string& name);
    Gauge& gauge(const std::string& name);
    LogHistogram& histogram(const std::string& name);

    /// One registered series, for exporters.
    struct Series {
        std::string name;
        MetricKind kind;
        const Counter* counter = nullptr;
        const Gauge* gauge = nullptr;
        const LogHistogram* histogram = nullptr;
    };

    /// Every registered series in name order.
    [[nodiscard]] std::vector<Series> series() const;

    [[nodiscard]] std::size_t size() const;

private:
    struct Slot {
        MetricKind kind;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<LogHistogram> histogram;
    };

    Slot& slot_for(const std::string& name, MetricKind kind);

    mutable Mutex mutex_{LockRank::kStats};
    std::map<std::string, Slot> slots_ MW_GUARDED_BY(mutex_);
};

}  // namespace mw::obs
