file(REMOVE_RECURSE
  "CMakeFiles/adaptation.dir/adaptation.cpp.o"
  "CMakeFiles/adaptation.dir/adaptation.cpp.o.d"
  "adaptation"
  "adaptation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
