// Unit tests for shapes, tensors and the linear-algebra kernels.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "tensor/shape.hpp"
#include "tensor/tensor.hpp"
#include "tensor/tensor_ops.hpp"

namespace {

using namespace mw;

TEST(Shape, BasicProperties) {
    const Shape s{2, 3, 4, 5};
    EXPECT_EQ(s.rank(), 4U);
    EXPECT_EQ(s.numel(), 120U);
    EXPECT_EQ(s.stride(3), 1U);
    EXPECT_EQ(s.stride(2), 5U);
    EXPECT_EQ(s.stride(0), 60U);
    EXPECT_EQ(s.str(), "(2, 3, 4, 5)");
}

TEST(Shape, Equality) {
    EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
    EXPECT_FALSE(Shape({2, 3}) == Shape({3, 2}));
    EXPECT_FALSE(Shape({2, 3}) == Shape({2, 3, 1}));
}

TEST(Shape, WithBatch) {
    const Shape s{8, 3, 32, 32};
    const Shape t = s.with_batch(64);
    EXPECT_EQ(t[0], 64U);
    EXPECT_EQ(t[1], 3U);
}

TEST(Shape, RejectsBadDims) {
    EXPECT_THROW(Shape({0, 3}), InvalidArgument);
    EXPECT_THROW(Shape({1, 2, 3, 4, 5}), InvalidArgument);
    EXPECT_THROW((void)Shape({2})[5], InvalidArgument);
}

TEST(Tensor, ZeroInitialised) {
    Tensor t(Shape{4, 4});
    for (const float x : t.span()) EXPECT_EQ(x, 0.0F);
}

TEST(Tensor, DeepCopySemantics) {
    Tensor a(Shape{2, 2});
    a.at(0, 0) = 1.0F;
    Tensor b = a;
    b.at(0, 0) = 2.0F;
    EXPECT_EQ(a.at(0, 0), 1.0F);
    EXPECT_EQ(b.at(0, 0), 2.0F);
    a = b;
    EXPECT_EQ(a.at(0, 0), 2.0F);
}

TEST(Tensor, AlignedStorage) {
    Tensor t(Shape{31});
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(t.data()) % kSimdAlignBytes, 0U);
}

TEST(Tensor, RowAccess) {
    Tensor t(Shape{3, 4});
    t.at(1, 2) = 7.0F;
    EXPECT_EQ(t.row(1)[2], 7.0F);
    EXPECT_THROW((void)t.row(3), InvalidArgument);
}

TEST(Tensor, BoundsChecking) {
    Tensor t(Shape{2, 2});
    EXPECT_THROW(t.at(4), InvalidArgument);
    EXPECT_THROW(t.at(2, 0), InvalidArgument);
}

TEST(Tensor, FillAndDiff) {
    Tensor a(Shape{8});
    Tensor b(Shape{8});
    a.fill(1.0F);
    b.fill(1.5F);
    EXPECT_NEAR(a.max_abs_diff(b), 0.5F, 1e-6F);
}

TEST(Tensor, RandomFillsAreDeterministic) {
    Rng r1(42);
    Rng r2(42);
    Tensor a(Shape{64});
    Tensor b(Shape{64});
    a.fill_normal(r1, 0.0F, 1.0F);
    b.fill_normal(r2, 0.0F, 1.0F);
    EXPECT_EQ(a.max_abs_diff(b), 0.0F);
}

TEST(Gemm, MatchesNaive) {
    Rng rng(1);
    const std::size_t m = 17;
    const std::size_t k = 23;
    const std::size_t n = 9;
    Tensor a(Shape{m, k});
    Tensor b(Shape{k, n});
    a.fill_uniform(rng, -1.0F, 1.0F);
    b.fill_uniform(rng, -1.0F, 1.0F);
    Tensor c(Shape{m, n});
    gemm(a, b, c);

    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            float acc = 0.0F;
            for (std::size_t kk = 0; kk < k; ++kk) acc += a.at(i, kk) * b.at(kk, j);
            EXPECT_NEAR(c.at(i, j), acc, 1e-4F);
        }
    }
}

TEST(Gemm, ParallelMatchesSerial) {
    Rng rng(2);
    Tensor a(Shape{64, 32});
    Tensor b(Shape{32, 48});
    a.fill_normal(rng, 0.0F, 1.0F);
    b.fill_normal(rng, 0.0F, 1.0F);
    Tensor serial(Shape{64, 48});
    Tensor parallel(Shape{64, 48});
    gemm(a, b, serial);
    ThreadPool pool(3);
    gemm(a, b, parallel, &pool);
    EXPECT_LT(serial.max_abs_diff(parallel), 1e-5F);
}

TEST(GemmBt, EquivalentToGemmWithTranspose) {
    Rng rng(3);
    const std::size_t m = 12;
    const std::size_t k = 20;
    const std::size_t n = 15;
    Tensor a(Shape{m, k});
    Tensor bt(Shape{n, k});
    a.fill_normal(rng, 0.0F, 1.0F);
    bt.fill_normal(rng, 0.0F, 1.0F);

    Tensor b(Shape{k, n});
    for (std::size_t i = 0; i < k; ++i) {
        for (std::size_t j = 0; j < n; ++j) b.at(i, j) = bt.at(j, i);
    }
    Tensor c1(Shape{m, n});
    Tensor c2(Shape{m, n});
    gemm(a, b, c1);
    gemm_bt(a, bt, c2);
    EXPECT_LT(c1.max_abs_diff(c2), 1e-4F);
}

TEST(Gemm, ShapeMismatchThrows) {
    Tensor a(Shape{2, 3});
    Tensor b(Shape{4, 5});
    Tensor c(Shape{2, 5});
    EXPECT_THROW(gemm(a, b, c), InvalidArgument);
}

TEST(Ops, AddBiasRows) {
    Tensor y(Shape{2, 3});
    Tensor bias(Shape{3});
    bias.at(0) = 1.0F;
    bias.at(1) = 2.0F;
    bias.at(2) = 3.0F;
    add_bias_rows(y, bias);
    EXPECT_EQ(y.at(0, 0), 1.0F);
    EXPECT_EQ(y.at(1, 2), 3.0F);
}

TEST(Ops, ScaleAddDot) {
    Tensor a(Shape{4});
    a.fill(2.0F);
    scale_inplace(a, 0.5F);
    EXPECT_EQ(a.at(0), 1.0F);
    Tensor b(Shape{4});
    b.fill(3.0F);
    add_inplace(a, b);
    EXPECT_EQ(a.at(3), 4.0F);
    EXPECT_NEAR(dot(a, b), 48.0, 1e-9);
}

}  // namespace
