#include "scanner.hpp"

#include <cctype>
#include <cstdlib>
#include <set>

namespace mwa {
namespace {

const std::set<std::string> kQualifierKw = {
    "const",    "constexpr", "mutable",  "static",   "inline",       "volatile",
    "extern",   "typename",  "unsigned", "signed",   "thread_local", "register",
    "virtual",  "explicit",  "friend",   "auto",
};

// Keywords that can legally precede a call expression: `return foo();`.
const std::set<std::string> kExprContextKw = {
    "return", "else", "do", "case", "throw", "co_return", "co_await", "co_yield",
};

// Identifiers followed by `(` that are never calls we care about.
const std::set<std::string> kControlKw = {
    "if",      "for",        "while",    "switch",           "catch",
    "sizeof",  "alignof",    "decltype", "noexcept",         "static_assert",
    "typeid",  "alignas",    "new",      "delete",           "static_cast",
    "assert",  "defined",    "int",      "double",           "float",
    "bool",    "char",       "long",     "short",            "unsigned",
    "signed",  "void",       "return",   "co_return",        "throw",
};

const std::set<std::string> kGuardTypes = {"MutexLock", "ReaderLock", "WriterLock"};

// Smart-pointer-like templates where `x->m()` dispatches to the ELEMENT type.
// Everything else templated (vector, map, deque, ...) keeps the outer name,
// which is foreign to the program and so produces no call edges — calling
// `states_.emplace(...)` on a std::map must not resolve to some class that
// happens to define emplace().
const std::set<std::string> kTransparentTemplates = {"unique_ptr", "shared_ptr", "weak_ptr",
                                                     "optional"};

struct Ctx {
    const LexedFile* file = nullptr;
    const std::vector<Token>* toks = nullptr;
    std::size_t i = 0;
    Program* prog = nullptr;

    bool done() const { return i >= toks->size(); }
    const Token& cur() const { return (*toks)[i]; }
    const Token* peek(int k) const {
        const std::size_t j = i + static_cast<std::size_t>(k);
        return j < toks->size() ? &(*toks)[j] : nullptr;
    }
    bool is_punct(const char* p) const {
        return !done() && cur().kind == Tok::kPunct && cur().text == p;
    }
    bool is_ident() const { return !done() && cur().kind == Tok::kIdent; }
    bool is_ident(const char* name) const { return is_ident() && cur().text == name; }
};

bool tok_is(const Token* t, const char* p) {
    return t != nullptr && t->kind == Tok::kPunct && t->text == p;
}
bool tok_ident(const Token* t) { return t != nullptr && t->kind == Tok::kIdent; }

// Consume a balanced (..) / {..} / [..] group; `c.i` must sit on the opener.
// Optionally collects the interior tokens (opener/closer excluded).
void skip_group(Ctx& c, const char* open, const char* close,
                std::vector<Token>* interior = nullptr) {
    int depth = 0;
    while (!c.done()) {
        if (c.is_punct(open)) {
            ++depth;
        } else if (c.is_punct(close)) {
            --depth;
            if (depth == 0) {
                ++c.i;
                return;
            }
        } else if (interior != nullptr && depth >= 1) {
            interior->push_back(c.cur());
        }
        ++c.i;
    }
}

void skip_to_semi(Ctx& c) {
    while (!c.done()) {
        if (c.is_punct(";")) {
            ++c.i;
            return;
        }
        if (c.is_punct("{")) {  // don't run past a body we failed to parse
            skip_group(c, "{", "}");
            if (c.is_punct(";")) ++c.i;
            return;
        }
        ++c.i;
    }
}

// Skip a template header `< ... >`. Tolerant: bails at `;` or `{` so a
// misparse cannot swallow the rest of the file. Treats ">>" as two closers.
void skip_template_header(Ctx& c) {
    if (!c.is_punct("<")) return;
    int depth = 0;
    while (!c.done()) {
        if (c.is_punct("<")) {
            ++depth;
        } else if (c.is_punct(">")) {
            if (--depth == 0) {
                ++c.i;
                return;
            }
        } else if (c.is_punct(">>")) {
            depth -= 2;
            if (depth <= 0) {
                ++c.i;
                return;
            }
        } else if (c.is_punct(";") || c.is_punct("{")) {
            return;
        }
        ++c.i;
    }
}

std::string last_ident(const std::vector<Token>& toks) {
    for (auto it = toks.rbegin(); it != toks.rend(); ++it) {
        if (it->kind == Tok::kIdent) return it->text;
    }
    return "";
}

// From the declaration head (everything before the deciding punctuator),
// split out the declared name (last identifier) and its type. The type is
// the last top-level identifier before the name — except for transparent
// wrappers, where it is the element:
//   `std::unique_ptr<obs::MetricsRegistry> registry_` -> "MetricsRegistry"
//   `std::map<std::string, DeviceState> states_`      -> "map"
//   `Transport* net_`                                 -> "Transport"
void split_head(const std::vector<Token>& head, std::string* name, std::string* type) {
    int name_idx = -1;
    for (int k = static_cast<int>(head.size()) - 1; k >= 0; --k) {
        if (head[static_cast<std::size_t>(k)].kind == Tok::kIdent) {
            name_idx = k;
            break;
        }
    }
    if (name_idx < 0) return;
    *name = head[static_cast<std::size_t>(name_idx)].text;
    int depth = 0;
    std::string outer;
    std::string inner;
    for (int k = 0; k < name_idx; ++k) {
        const Token& t = head[static_cast<std::size_t>(k)];
        if (t.kind == Tok::kPunct) {
            if (t.text == "<") ++depth;
            if (t.text == ">") --depth;
            if (t.text == ">>") depth -= 2;
            continue;
        }
        if (t.kind != Tok::kIdent || kQualifierKw.count(t.text) != 0) continue;
        if (depth == 0) {
            outer = t.text;
        } else {
            inner = t.text;
        }
    }
    if (!inner.empty() && kTransparentTemplates.count(outer) != 0) {
        *type = inner;
    } else {
        *type = outer;
    }
}

long parse_rank_value(const std::vector<Token>& interior, std::string* rank_name) {
    // Look for `LockRank :: kFoo` (or a bare `kFoo` enumerator).
    for (std::size_t k = 0; k < interior.size(); ++k) {
        const Token& t = interior[k];
        if (t.kind == Tok::kIdent && t.text.size() > 1 && t.text[0] == 'k' &&
            std::isupper(static_cast<unsigned char>(t.text[1]))) {
            if (t.text == "LockRank") continue;
            *rank_name = t.text;
            return 0;
        }
    }
    return -1;
}

void record_variable(Ctx& c, const std::string& cls, const std::vector<Token>& head,
                     const std::vector<Token>& init, int line) {
    std::string name;
    std::string type;
    split_head(head, &name, &type);
    if (name.empty()) return;
    if (type == "Mutex" || type == "SharedMutex") {
        MutexDecl m;
        m.cls = cls;
        m.name = name;
        m.shared = type == "SharedMutex";
        m.file = c.file->path;
        m.line = line;
        parse_rank_value(init, &m.rank);
        c.prog->mutexes.push_back(m);
        return;
    }
    if (!type.empty()) c.prog->members.push_back({cls, name, type});
}

void parse_enum(Ctx& c) {
    ++c.i;  // 'enum'
    if (c.is_ident("class") || c.is_ident("struct")) ++c.i;
    std::string name;
    if (c.is_ident()) {
        name = c.cur().text;
        ++c.i;
    }
    while (!c.done() && !c.is_punct("{") && !c.is_punct(";")) ++c.i;
    if (c.is_punct(";")) {
        ++c.i;
        return;
    }
    if (!c.is_punct("{")) return;
    if (name != "LockRank") {
        skip_group(c, "{", "}");
        if (c.is_punct(";")) ++c.i;
        return;
    }
    ++c.i;  // '{'
    long next_value = 0;
    while (!c.done() && !c.is_punct("}")) {
        if (!c.is_ident()) {
            ++c.i;
            continue;
        }
        RankEntry e;
        e.name = c.cur().text;
        e.file = c.file->path;
        e.line = c.cur().line;
        ++c.i;
        if (c.is_punct("=")) {
            ++c.i;
            if (!c.done() && c.cur().kind == Tok::kNumber) {
                e.value = std::strtol(c.cur().text.c_str(), nullptr, 0);
                ++c.i;
            }
        } else {
            e.value = next_value;
        }
        next_value = e.value + 1;
        c.prog->ranks.entries.push_back(e);
        c.prog->ranks.value[e.name] = e.value;
        while (!c.done() && !c.is_punct(",") && !c.is_punct("}")) ++c.i;
        if (c.is_punct(",")) ++c.i;
    }
    if (c.is_punct("}")) ++c.i;
    if (c.is_punct(";")) ++c.i;
}

// --- function bodies -------------------------------------------------------

bool tok_is_ptr_ref(const Token* t) {
    return tok_is(t, "*") || tok_is(t, "&") || tok_is(t, "&&");
}

// Try to match a local variable declaration starting at c.i:
//   IDENT (:: IDENT)* <...>? [*&]* IDENT2  followed by  = ; ( { :
// Records IDENT2 -> last type identifier and advances c.i to IDENT2 so the
// initializer expression is still scanned for calls. Returns false (and
// leaves c.i untouched) if the shape doesn't match.
bool try_local_decl(Ctx& c, FunctionInfo& fn) {
    std::size_t j = c.i;
    const auto& toks = *c.toks;
    std::string type;
    bool saw_type = false;
    while (j < toks.size() && toks[j].kind == Tok::kIdent) {
        if (kControlKw.count(toks[j].text) != 0 || kExprContextKw.count(toks[j].text) != 0)
            return false;
        if (kQualifierKw.count(toks[j].text) == 0) {
            type = toks[j].text;
            saw_type = true;
        }
        ++j;
        if (j < toks.size() && tok_is(&toks[j], "::")) {
            ++j;
            continue;
        }
        break;
    }
    if (!saw_type || j >= toks.size()) return false;
    // Optional template arguments on the type: transparent wrappers take the
    // element type (unique_ptr<Device> -> Device), containers keep the outer
    // (foreign) name so their methods never resolve to program classes.
    if (tok_is(&toks[j], "<")) {
        const std::string outer = type;
        std::string inner;
        int depth = 0;
        while (j < toks.size()) {
            if (tok_is(&toks[j], "<")) {
                ++depth;
            } else if (tok_is(&toks[j], ">")) {
                if (--depth == 0) {
                    ++j;
                    break;
                }
            } else if (tok_is(&toks[j], ">>")) {
                depth -= 2;
                if (depth <= 0) {
                    ++j;
                    break;
                }
            } else if (toks[j].kind == Tok::kIdent && kQualifierKw.count(toks[j].text) == 0) {
                inner = toks[j].text;
            } else if (tok_is(&toks[j], ";") || tok_is(&toks[j], "{")) {
                return false;
            }
            ++j;
        }
        if (!inner.empty() && kTransparentTemplates.count(outer) != 0) type = inner;
    }
    while (j < toks.size() && (tok_is_ptr_ref(&toks[j]) ||
                               (toks[j].kind == Tok::kIdent && toks[j].text == "const"))) {
        ++j;
    }
    if (j >= toks.size() || toks[j].kind != Tok::kIdent) return false;
    const std::string var = toks[j].text;
    const Token* after = j + 1 < toks.size() ? &toks[j + 1] : nullptr;
    if (!(tok_is(after, "=") || tok_is(after, ";") || tok_is(after, "(") ||
          tok_is(after, "{") || tok_is(after, ":"))) {
        return false;
    }
    fn.locals[var] = type;
    c.i = j;  // leave IDENT2 to be consumed by the main loop
    return true;
}

void scan_block(Ctx& c, FunctionInfo& fn, std::vector<bool>& alive);

// c.i sits on a '[' that is NOT a subscript: a lambda introducer or an
// attribute. Consume the bracket group, any parameter list and specifiers; a
// following '{' is a lambda body, scanned with NO outer guards live — the
// common case in this codebase is deferred execution (pool submits, transport
// callbacks), where attributing the enclosing guards would fabricate edges.
// The cost: a lambda invoked synchronously under a lock is not charged with
// that lock (documented in DESIGN.md §14).
void handle_lambda_or_attribute(Ctx& c, FunctionInfo& fn) {
    skip_group(c, "[", "]");
    if (c.is_punct("(")) skip_group(c, "(", ")");
    while (c.is_ident("mutable") || c.is_ident("noexcept")) ++c.i;
    if (c.is_punct("->")) {
        ++c.i;
        while (c.is_ident() || c.is_punct("::") || c.is_punct("*") || c.is_punct("&")) ++c.i;
        if (c.is_punct("<")) skip_template_header(c);
    }
    if (c.is_punct("{")) {
        ++c.i;
        std::vector<bool> inner(fn.guards.size(), false);
        scan_block(c, fn, inner);
    }
}

// Scan one brace-delimited block of a function body. Entered with c.i on the
// first token AFTER '{'; returns after the matching '}'. Guards declared
// inside die when the block closes.
void scan_block(Ctx& c, FunctionInfo& fn, std::vector<bool>& alive) {
    const std::size_t first_new = fn.guards.size();
    while (!c.done()) {
        if (c.is_punct("}")) {
            ++c.i;
            break;
        }
        if (c.is_punct("{")) {
            ++c.i;
            scan_block(c, fn, alive);
            continue;
        }
        if (c.is_punct("[")) {
            const Token* prev = c.i > 0 ? &(*c.toks)[c.i - 1] : nullptr;
            if (tok_ident(prev) || tok_is(prev, ")") || tok_is(prev, "]")) {
                ++c.i;  // subscript — its contents are scanned as usual
            } else {
                handle_lambda_or_attribute(c, fn);
            }
            continue;
        }
        if (!c.is_ident()) {
            ++c.i;
            continue;
        }
        const Token& t = c.cur();
        // Guard declaration: [const already skipped] G NAME ( expr ) ;
        if (kGuardTypes.count(t.text) != 0 && tok_ident(c.peek(1)) &&
            (tok_is(c.peek(2), "(") || tok_is(c.peek(2), "{"))) {
            const int line = t.line;
            const bool reader = t.text == "ReaderLock";
            c.i += 2;  // onto the opener
            std::vector<Token> expr;
            if (c.is_punct("(")) {
                skip_group(c, "(", ")", &expr);
            } else {
                skip_group(c, "{", "}", &expr);
            }
            GuardSite g;
            g.mutex_expr = last_ident(expr);
            g.reader = reader;
            g.line = line;
            for (std::size_t gi = 0; gi < fn.guards.size(); ++gi) {
                if (alive[gi]) g.live_guards.push_back(gi);
            }
            fn.guards.push_back(g);
            alive.push_back(true);
            continue;
        }
        if (t.text == "const") {  // irrelevant to every pattern below
            ++c.i;
            continue;
        }
        if (try_local_decl(c, fn)) continue;
        // Call site: IDENT followed by '('.
        if (tok_is(c.peek(1), "(") && kControlKw.count(t.text) == 0) {
            const Token* prev = c.i > 0 ? &(*c.toks)[c.i - 1] : nullptr;
            CallSite call;
            call.name = t.text;
            call.line = t.line;
            bool is_call = true;
            if (tok_is(prev, ".") || tok_is(prev, "->")) {
                call.member_call = true;
                const Token* recv = c.i >= 2 ? &(*c.toks)[c.i - 2] : nullptr;
                if (tok_ident(recv)) call.recv = recv->text;
            } else if (tok_is(prev, "::")) {
                const Token* qual = c.i >= 2 ? &(*c.toks)[c.i - 2] : nullptr;
                if (tok_ident(qual)) call.qualifier = qual->text;
            } else if (tok_ident(prev) || tok_is(prev, ">") || tok_is_ptr_ref(prev)) {
                // `Type name(...)` declaration — unless prev is an expression
                // keyword (`return foo()`); casts are filtered by kControlKw.
                if (!(prev->kind == Tok::kIdent && kExprContextKw.count(prev->text) != 0)) {
                    is_call = false;
                }
            }
            if (is_call) {
                for (std::size_t g = 0; g < fn.guards.size(); ++g) {
                    if (alive[g]) call.live_guards.push_back(g);
                }
                fn.calls.push_back(call);
            }
            ++c.i;  // the '(' and its arguments are scanned normally
            continue;
        }
        ++c.i;
    }
    for (std::size_t g = first_new; g < fn.guards.size(); ++g) alive[g] = false;
}

// --- declarations ----------------------------------------------------------

// Derive the owning class and name from the identifier chain immediately
// before the parameter list: `Server::dispatch` -> ("Server", "dispatch"),
// `Router::~Router` -> ("Router", "~Router"), bare `submit` -> (ctx, "submit").
void name_from_chain(const std::vector<Token>& head, const std::string& ctx_cls,
                     std::string* cls, std::string* name) {
    int k = static_cast<int>(head.size()) - 1;
    auto at = [&head](int idx) -> const Token& {
        return head[static_cast<std::size_t>(idx)];
    };
    if (k < 0) return;
    std::string n;
    if (at(k).kind == Tok::kIdent) {
        n = at(k).text;
        --k;
        if (k >= 0 && tok_is(&at(k), "~")) {
            n = "~" + n;
            --k;
        }
    } else {
        return;
    }
    *name = n;
    *cls = ctx_cls;
    if (k >= 1 && tok_is(&at(k), "::") && at(k - 1).kind == Tok::kIdent) {
        *cls = at(k - 1).text;
    }
}

void parse_declaration(Ctx& c, const std::string& cls);

void scan_region(Ctx& c, const std::string& cls, bool stop_at_close);

void parse_class(Ctx& c, const std::string& outer) {
    ++c.i;  // 'class' / 'struct'
    std::string name;
    if (c.is_punct("[")) skip_group(c, "[", "]");  // attributes
    if (c.is_ident()) {
        name = c.cur().text;
        ++c.i;
    }
    // Base clause / 'final' / TSA macros — run to the body or a fwd decl.
    while (!c.done() && !c.is_punct("{") && !c.is_punct(";")) {
        if (c.is_punct("(")) {
            skip_group(c, "(", ")");
            continue;
        }
        ++c.i;
    }
    if (c.is_punct(";")) {
        ++c.i;
        return;
    }
    if (!c.is_punct("{")) return;
    if (!name.empty()) c.prog->classes.insert(name);
    ++c.i;
    scan_region(c, name.empty() ? outer : name, true);
    skip_to_semi(c);  // `};` (possibly with trailing declarators we ignore)
}

void parse_declaration(Ctx& c, const std::string& cls) {
    std::vector<Token> head;
    const int start_line = c.cur().line;
    while (!c.done()) {
        if (c.is_punct(";")) {
            record_variable(c, cls, head, {}, start_line);
            ++c.i;
            return;
        }
        if (c.is_punct("=")) {
            record_variable(c, cls, head, {}, start_line);
            ++c.i;  // initializer tokens are re-scanned harmlessly
            return;
        }
        if (c.is_punct("{")) {
            // Brace-initialized variable: `Mutex mu{LockRank::kX};`
            std::vector<Token> init;
            skip_group(c, "{", "}", &init);
            record_variable(c, cls, head, init, start_line);
            if (c.is_punct(";")) ++c.i;
            return;
        }
        if (c.is_punct("(")) {
            std::string fn_cls;
            std::string fn_name;
            name_from_chain(head, cls, &fn_cls, &fn_name);
            // Mutex members use paren-init too: `Mutex mu_(LockRank::kX);`
            std::string head_name;
            std::string head_type;
            split_head(head, &head_name, &head_type);
            if (head_type == "Mutex" || head_type == "SharedMutex") {
                std::vector<Token> init;
                skip_group(c, "(", ")", &init);
                record_variable(c, cls, head, init, start_line);
                if (c.is_punct(";")) ++c.i;
                return;
            }
            skip_group(c, "(", ")");  // parameter list
            // Post-qualifiers: const/noexcept/override/... and TSA macros.
            while (!c.done()) {
                if (c.is_ident() && (c.cur().text == "const" || c.cur().text == "noexcept" ||
                                     c.cur().text == "override" || c.cur().text == "final" ||
                                     c.cur().text == "try" ||
                                     c.cur().text.rfind("MW_", 0) == 0)) {
                    ++c.i;
                    if (c.is_punct("(")) skip_group(c, "(", ")");
                    continue;
                }
                if (c.is_punct("->")) {  // trailing return type
                    ++c.i;
                    while (!c.done() &&
                           (c.is_ident() || c.is_punct("::") || c.is_punct("*") ||
                            c.is_punct("&"))) {
                        ++c.i;
                    }
                    if (c.is_punct("<")) skip_template_header(c);
                    continue;
                }
                break;
            }
            if (c.is_punct(";")) {  // pure declaration (or paren-init member)
                ++c.i;
                return;
            }
            if (c.is_punct("=")) {  // `= default`, `= delete`, `= 0`
                skip_to_semi(c);
                return;
            }
            if (c.is_punct(":")) {
                // Constructor init list: run to the body `{`. The body brace
                // follows a `)` or `}` (a completed initializer); a `{` after
                // an identifier is a `member{init}` group to consume.
                ++c.i;
                std::string prev = ":";
                while (!c.done()) {
                    if (c.is_punct("(")) {
                        skip_group(c, "(", ")");
                        prev = ")";
                        continue;
                    }
                    if (c.is_punct("{")) {
                        if (prev == ")" || prev == "}") break;  // the body
                        skip_group(c, "{", "}");
                        prev = "}";
                        continue;
                    }
                    if (c.is_punct(";")) return;  // misparse — bail
                    prev = c.cur().text;
                    ++c.i;
                }
            }
            if (c.is_punct("{")) {
                ++c.i;
                FunctionInfo fn;
                fn.cls = fn_cls;
                fn.name = fn_name;
                fn.file = c.file->path;
                fn.line = start_line;
                std::vector<bool> alive;
                scan_block(c, fn, alive);
                c.prog->functions.push_back(fn);
                return;
            }
            // Unrecognized shape — make progress without derailing.
            skip_to_semi(c);
            return;
        }
        if (c.is_punct("<")) {
            // Template arguments inside the head (`std::vector<T> x;`).
            const std::size_t before = c.i;
            skip_template_header(c);
            for (std::size_t k = before; k < c.i; ++k) head.push_back((*c.toks)[k]);
            continue;
        }
        // TSA attribute macros in member declarations:
        // `std::size_t size_ MW_GUARDED_BY(mutex_) = 0;`
        if (c.is_ident() && c.cur().text.rfind("MW_", 0) == 0 && tok_is(c.peek(1), "(")) {
            ++c.i;
            skip_group(c, "(", ")");
            continue;
        }
        head.push_back(c.cur());
        ++c.i;
    }
}

void scan_region(Ctx& c, const std::string& cls, bool stop_at_close) {
    while (!c.done()) {
        if (c.is_punct("}")) {
            ++c.i;
            if (stop_at_close) return;
            continue;
        }
        if (c.is_punct("{")) {
            ++c.i;
            scan_region(c, cls, true);
            continue;
        }
        if (c.is_ident()) {
            const std::string& t = c.cur().text;
            if (t == "namespace") {
                ++c.i;
                while (c.is_ident() || c.is_punct("::")) ++c.i;
                if (c.is_punct("{")) {
                    ++c.i;
                    scan_region(c, cls, true);  // namespaces are transparent
                } else {
                    skip_to_semi(c);  // namespace alias
                }
                continue;
            }
            if (t == "template") {
                ++c.i;
                skip_template_header(c);
                continue;
            }
            if (t == "using" || t == "typedef" || t == "static_assert" || t == "friend") {
                skip_to_semi(c);
                continue;
            }
            if (t == "enum") {
                parse_enum(c);
                continue;
            }
            if (t == "class" || t == "struct") {
                // `class X;` fwd decls and full definitions both handled;
                // elaborated uses (`struct T x;`) degrade to a fwd-decl skip.
                parse_class(c, cls);
                continue;
            }
            if (t == "public" || t == "private" || t == "protected") {
                ++c.i;
                if (c.is_punct(":")) ++c.i;
                continue;
            }
            if (t == "extern") {
                ++c.i;
                if (!c.done() && c.cur().kind == Tok::kString) ++c.i;
                if (c.is_punct("{")) {
                    ++c.i;
                    scan_region(c, cls, true);
                }
                continue;
            }
            parse_declaration(c, cls);
            continue;
        }
        ++c.i;
    }
}

// Restrict a file to its LockRank enum (for sync.hpp).
void scan_rank_table(Ctx& c) {
    while (!c.done()) {
        if (c.is_ident("enum")) {
            const Token* k1 = c.peek(1);
            const Token* k2 = c.peek(2);
            const bool is_lockrank =
                (tok_ident(k1) && k1->text == "LockRank") ||
                (tok_ident(k1) && (k1->text == "class" || k1->text == "struct") &&
                 tok_ident(k2) && k2->text == "LockRank");
            if (is_lockrank) {
                parse_enum(c);
                continue;
            }
        }
        ++c.i;
    }
}

}  // namespace

void scan_file(const LexedFile& file, Program& prog, bool rank_table_only) {
    Ctx c;
    c.file = &file;
    c.toks = &file.tokens;
    c.prog = &prog;
    if (rank_table_only) {
        scan_rank_table(c);
    } else {
        scan_region(c, "", false);
    }
}

}  // namespace mwa
