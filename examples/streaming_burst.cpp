// Streaming inference under bursty traffic — the scenario the paper's
// introduction motivates: data bursts and overloads arrive at run time and
// the scheduler must keep latency under control by spreading load across
// the heterogeneous devices.
//
// Compares the adaptive scheduler against a "dGPU for everything" baseline
// on the same burst trace and prints per-phase latency percentiles.
#include <cstdio>
#include <vector>

#include "common/stats.hpp"
#include "common/units.hpp"
#include "ml/random_forest.hpp"
#include "nn/model_builder.hpp"
#include "nn/zoo.hpp"
#include "sched/scheduler.hpp"
#include "workload/generator.hpp"
#include "workload/trace.hpp"

using namespace mw;

namespace {

std::vector<double> replay_static(const workload::Trace& trace) {
    auto registry = device::DeviceRegistry::standard_testbed({.noise_sigma = 0.05});
    for (const auto& spec : nn::zoo::paper_models()) {
        registry.load_model_everywhere(
            std::make_shared<nn::Model>(nn::build_model(spec, 7)));
    }
    device::Device& gpu = registry.at("gtx1080ti");
    std::vector<double> latencies;
    for (const auto& r : trace) {
        latencies.push_back(
            gpu.profile(r.request.model_name, r.request.batch, r.arrival_s).latency_s());
    }
    return latencies;
}

}  // namespace

int main() {
    // A bursty minute: quiet background traffic with 100 Hz bursts.
    workload::GeneratorConfig wl;
    wl.pattern = workload::ArrivalPattern::kBursty;
    wl.duration_s = 60.0;
    wl.mean_rate_hz = 4.0;
    wl.burst_rate_hz = 120.0;
    wl.burst_mean_len_s = 1.0;
    wl.gap_mean_len_s = 3.0;
    wl.model_names = {"simple", "mnist-small", "mnist-cnn"};
    wl.batch_choices = {128, 1024, 8192, 32768};
    wl.policy = sched::Policy::kMinLatency;
    wl.seed = 17;
    const auto trace = workload::generate_trace(wl);
    const auto stats = workload::trace_stats(trace);
    std::printf("trace: %zu requests, mean %.1f req/s, peak %.0f req/s, %zu samples total\n",
                stats.requests, stats.mean_rate_hz, stats.peak_rate_hz, stats.total_samples);

    // Adaptive scheduler world.
    auto registry = device::DeviceRegistry::standard_testbed({.noise_sigma = 0.05});
    sched::Dispatcher dispatcher(registry);
    for (const auto& spec : nn::zoo::paper_models()) dispatcher.register_model(spec, 7);
    dispatcher.deploy_all();

    std::printf("profiling + training the scheduler...\n");
    const auto dataset = sched::build_scheduler_dataset(
        registry, nn::zoo::paper_models(), {.batches = {128, 1024, 8192, 32768}});
    sched::DevicePredictor predictor(
        std::make_unique<ml::RandomForest>(ml::ForestConfig{.n_estimators = 60, .seed = 2}),
        dataset.device_names);
    predictor.fit(dataset);
    sched::OnlineScheduler scheduler(dispatcher, std::move(predictor), dataset,
                                     {.explore_probability = 0.02, .retrain_after = 32});

    std::vector<double> latencies;
    std::map<std::string, std::size_t> device_share;
    for (const auto& r : trace) {
        const auto outcome = scheduler.submit(r.request, r.arrival_s);
        latencies.push_back(outcome.measurement.latency_s());
        ++device_share[outcome.decision.device_name];
    }

    const auto static_latencies = replay_static(trace);

    auto report = [](const char* name, std::span<const double> xs) {
        std::printf("%-20s p50 %-10s p95 %-10s p99 %s\n", name,
                    format_duration(percentile(xs, 50)).c_str(),
                    format_duration(percentile(xs, 95)).c_str(),
                    format_duration(percentile(xs, 99)).c_str());
    };
    std::printf("\nlatency under bursts (includes queueing):\n");
    report("adaptive scheduler", latencies);
    report("static dGPU", static_latencies);

    std::printf("\ndevice share of the adaptive scheduler:\n");
    for (const auto& [device_name, count] : device_share) {
        std::printf("  %-10s %5.1f%%\n", device_name.c_str(),
                    100.0 * static_cast<double>(count) / static_cast<double>(trace.size()));
    }
    std::printf("explorations: %zu, retrains: %zu\n", scheduler.explorations(),
                scheduler.retrains());
    return 0;
}
