// Serving-layer throughput bench: open-loop arrivals against mw::serve.
//
// Part 1 sweeps offered load from below to past saturation on a compute-heavy
// model and shows the bounded queue shedding gracefully: sustained QPS
// plateaus, the excess is rejected explicitly, and queue-wait percentiles
// stay bounded instead of growing without limit.
//
// Part 2 holds the worker count fixed and toggles dynamic batching on a tiny
// model under max-rate arrivals, printing per-policy throughput / latency /
// energy. There the per-request serving cost (scheduler decision under the
// serialising mutex, dispatch bookkeeping, future completion) dominates, and
// coalescing amortises it across the batch — the real mechanism by which
// dynamic batching raises sustained QPS at equal workers.
//
// Part 3 repeats the max-rate run with a TraceRecorder installed and reports
// the sustained-QPS cost of recording every request-path span (budget: <5%).
#include <cstdio>
#include <vector>

#include "common/format.hpp"
#include "common/timer.hpp"
#include "ml/random_forest.hpp"
#include "nn/zoo.hpp"
#include "obs/trace.hpp"
#include "sched/scheduler.hpp"
#include "sched/scheduler_dataset.hpp"
#include "serve/server.hpp"
#include "workload/stream.hpp"

using namespace mw;

namespace {

struct World {
    device::DeviceRegistry registry = device::DeviceRegistry::standard_testbed();
    sched::Dispatcher dispatcher{registry};
    std::unique_ptr<sched::OnlineScheduler> scheduler;

    World() {
        dispatcher.register_model(nn::zoo::simple(), 7);
        dispatcher.register_model(nn::zoo::mnist_small(), 7);
        dispatcher.deploy_all();
        const auto dataset = sched::build_scheduler_dataset(
            registry, {nn::zoo::simple(), nn::zoo::mnist_small()},
            {.batches = {8, 64, 512}});
        sched::DevicePredictor predictor(
            std::make_unique<ml::RandomForest>(
                ml::ForestConfig{.n_estimators = 20, .seed = 2}),
            dataset.device_names);
        predictor.fit(dataset);
        scheduler = std::make_unique<sched::OnlineScheduler>(
            dispatcher, std::move(predictor), dataset,
            sched::SchedulerConfig{.explore_probability = 0.0});
        for (device::Device* dev : registry.devices()) dev->reset_timeline();
    }
};

struct TrafficSpec {
    const char* model;
    std::size_t sample_elems;
    std::size_t samples_per_request;
    bool mixed_policies;
};

/// Pre-generated payload pool so the pacing thread only pays a memcpy.
std::vector<Tensor> make_payload_pool(const TrafficSpec& traffic, std::size_t count) {
    workload::SyntheticSource source(23);
    std::vector<Tensor> pool;
    pool.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        pool.push_back(source.next_batch(traffic.samples_per_request,
                                         traffic.sample_elems));
    }
    return pool;
}

struct LoadResult {
    serve::ServerSnapshot snapshot;
    double elapsed_s = 0.0;
    std::size_t offered = 0;
};

/// Open-loop load: arrivals are paced at `qps` regardless of completions
/// (catch-up pacing — a slow server cannot slow the clients down). A huge
/// `qps` degenerates into submit-as-fast-as-possible.
LoadResult run_load(World& world, const serve::ServerConfig& config,
                    const TrafficSpec& traffic, double qps, double duration_s) {
    WallClock clock;
    serve::Server server(*world.scheduler, world.dispatcher, clock, config);
    const auto pool = make_payload_pool(traffic, 64);

    std::vector<std::future<serve::Response>> futures;
    futures.reserve(static_cast<std::size_t>(qps < 1e6 ? qps * duration_s * 1.1 : 1e5));
    std::size_t offered = 0;
    const double start = clock.now();
    while (true) {
        const double now = clock.now() - start;
        if (now >= duration_s) break;
        const double target = static_cast<double>(offered) / qps;
        if (target > now) {
            sleep_for_seconds(target - now);
            continue;
        }
        const auto policy =
            traffic.mixed_policies
                ? static_cast<sched::Policy>(offered % serve::kPolicyLanes)
                : sched::Policy::kMaxThroughput;
        futures.push_back(server.submit(serve::InferenceRequest{
            traffic.model, Tensor(pool[offered % pool.size()]), policy}));
        ++offered;
    }
    server.stop();  // drains the queue, then resolves everything
    const double elapsed = clock.now() - start;
    for (auto& f : futures) f.get();
    return {server.stats(), elapsed, offered};
}

void print_sweep_row(double qps, const LoadResult& r) {
    const auto t = r.snapshot.totals();
    const auto& tp = r.snapshot.of(sched::Policy::kMaxThroughput);
    std::printf("  %8.0f  %9.0f  %9zu  %9zu  %10s  %10s  %10s\n", qps,
                static_cast<double>(t.completed) / r.elapsed_s, t.completed,
                t.rejected_full + t.evicted + t.shed,
                format_duration(tp.queue_p50_s).c_str(),
                format_duration(tp.queue_p95_s).c_str(),
                format_duration(tp.queue_p99_s).c_str());
}

void print_policy_table(const char* label, const LoadResult& r) {
    std::printf("%s (offered %zu in %.2fs)\n", label, r.offered, r.elapsed_s);
    std::printf("  %-16s %10s %10s %10s %10s %10s\n", "policy", "done QPS", "queue p95",
                "exec p95", "energy J", "coalesced");
    for (std::size_t lane = 0; lane < serve::kPolicyLanes; ++lane) {
        const auto policy = static_cast<sched::Policy>(lane);
        const auto& p = r.snapshot.of(policy);
        const auto& c = p.counters;
        const double mean_coalesced =
            c.batches_executed > 0
                ? static_cast<double>(c.coalesced_requests) /
                      static_cast<double>(c.batches_executed)
                : 0.0;
        std::printf("  %-16s %10.0f %10s %10s %10.2f %10.2f\n",
                    sched::policy_name(policy).c_str(),
                    static_cast<double>(c.completed) / r.elapsed_s,
                    format_duration(p.queue_p95_s).c_str(),
                    format_duration(p.execute_p95_s).c_str(), c.energy_j, mean_coalesced);
    }
    const auto t = r.snapshot.totals();
    std::printf("  total: sustained %.0f QPS, rejected %zu, shed %zu\n\n",
                static_cast<double>(t.completed) / r.elapsed_s,
                t.rejected_full + t.evicted, t.shed);
}

}  // namespace

int main() {
    std::printf("building world (profiling + scheduler training)...\n");
    World world;

    // --- Part 1: offered-load sweep, batching off ----------------------
    // mnist-small is compute-heavy, so three workers saturate quickly and
    // the interesting behaviour is what the queue does past that point.
    const TrafficSpec heavy{"mnist-small", 784, 8, false};
    serve::ServerConfig sweep_config;
    sweep_config.workers = 3;
    sweep_config.queue_capacity = 128;
    sweep_config.admission.policy = serve::BackpressurePolicy::kRejectNewest;
    sweep_config.batching.enabled = false;

    std::printf("\nopen-loop sweep: %s, %zu samples/request, %zu workers, queue cap %zu\n",
                heavy.model, heavy.samples_per_request, sweep_config.workers,
                sweep_config.queue_capacity);
    std::printf("  %8s  %9s  %9s  %9s  %10s  %10s  %10s\n", "offered", "sustained",
                "completed", "refused", "queue p50", "queue p95", "queue p99");
    for (const double qps : {50.0, 250.0, 1000.0, 4000.0}) {
        const auto result = run_load(world, sweep_config, heavy, qps, 1.2);
        print_sweep_row(qps, result);
    }
    std::printf("  (refused grows past saturation while queue-wait percentiles stay"
                " bounded: the queue sheds, it does not build an unbounded backlog)\n");

    // --- Part 2: batching off vs on at max-rate arrivals ----------------
    // The tiny Iris model makes per-request serving overhead the bottleneck;
    // arrivals are submitted as fast as the client can push them.
    const TrafficSpec tiny{"simple", 4, 8, true};
    serve::ServerConfig unbatched = sweep_config;
    serve::ServerConfig batched = sweep_config;
    batched.batching = {.enabled = true, .max_requests = 32, .max_samples = 4096,
                        .max_wait_s = 0.002};

    std::printf("\ndynamic batching on %s at max-rate arrivals, mixed policies:\n\n",
                tiny.model);
    const auto off = run_load(world, unbatched, tiny, 1e9, 1.5);
    print_policy_table("batching OFF (batch=1)", off);
    const auto on = run_load(world, batched, tiny, 1e9, 1.5);
    print_policy_table("batching ON (<=32 req / 2 ms window)", on);

    const double off_qps =
        static_cast<double>(off.snapshot.totals().completed) / off.elapsed_s;
    const double on_qps =
        static_cast<double>(on.snapshot.totals().completed) / on.elapsed_s;
    std::printf("sustained QPS: %.0f -> %.0f (%.1fx) at equal workers\n", off_qps, on_qps,
                off_qps > 0.0 ? on_qps / off_qps : 0.0);

    // --- Part 3: request-path tracing overhead --------------------------
    // Same max-rate run twice: hooks with no recorder installed (one atomic
    // load per hook — the production "tracing off" cost) vs a recorder
    // capturing every span. Under -DMW_OBS=OFF this section is compiled out
    // along with the hooks themselves.
#if defined(MW_OBS_ENABLED)
    std::printf("\ntracing overhead on %s at max-rate arrivals (batching ON):\n",
                tiny.model);
    const auto plain = run_load(world, batched, tiny, 1e9, 1.5);
    const double plain_qps =
        static_cast<double>(plain.snapshot.totals().completed) / plain.elapsed_s;

    obs::TraceRecorder recorder({.ring_capacity = std::size_t{1} << 17});
    obs::TraceRecorder::install(&recorder);
    const auto traced = run_load(world, batched, tiny, 1e9, 1.5);
    obs::TraceRecorder::install(nullptr);
    const double traced_qps =
        static_cast<double>(traced.snapshot.totals().completed) / traced.elapsed_s;

    std::printf("  tracing OFF: %9.0f QPS\n", plain_qps);
    std::printf("  tracing ON:  %9.0f QPS  (%zu spans, %zu dropped, %zu threads)\n",
                traced_qps, recorder.snapshot().size(), recorder.dropped(),
                recorder.thread_count());
    const double overhead_pct =
        plain_qps > 0.0 ? (plain_qps - traced_qps) / plain_qps * 100.0 : 0.0;
    std::printf("  overhead: %.1f%% of sustained QPS (budget: < 5%%)\n", overhead_pct);
#else
    std::printf("\n(tracing hooks compiled out: MW_OBS=OFF)\n");
#endif
    return 0;
}
