// EpochCell: a two-slot, reader-refcounted RCU cell for publishing immutable
// snapshots to lock-free readers (ROADMAP item 2: the scheduler's
// epoch-snapshotted state lives in one of these).
//
// Shape: two slots, each holding an owned `const T*` plus a reader count.
// `active_` names the slot readers should use. A reader pins the active slot
// by incrementing its count, re-reads `active_`, and retries if the slot was
// flipped away in between — so a successful pin guarantees the writer's
// drain loop will observe the reader. Writers serialise on a mutex (cold
// path: snapshots are published every few hundred batches), install the new
// snapshot into the INACTIVE slot after draining its stragglers, and flip
// `active_`. Reclamation is therefore deferred by exactly one publish: the
// pointer freed by publish N is the one installed by publish N-2, whose slot
// went inactive at publish N-1 and has drained by the time N reuses it.
//
// The seq_cst pair — reader's pin increment + re-check vs writer's flip +
// drain load — is a Dekker handshake: if the reader's re-check still sees
// the old slot active, its increment precedes the flip in the total order
// and the writer's drain must see it. Weakening either side lets a reader
// hold a freed snapshot; the memory-order template parameters exist ONLY so
// the model-check mutation proof can demonstrate exactly that (see
// tests/test_mc.cpp and DESIGN.md §15). Production code uses the defaults.
#pragma once

#include <cstddef>
#include <memory>

#include "common/error.hpp"
#include "common/sync.hpp"

namespace mw {

template <typename T,
          std::memory_order PinOrder = std::memory_order_seq_cst,
          std::memory_order FlipOrder = std::memory_order_seq_cst>
class EpochCell {
public:
    /// RAII pin on the snapshot that was active at acquisition. The payload
    /// stays valid (and immutable) for the guard's lifetime, across any
    /// number of concurrent publishes.
    class ReadGuard {
    public:
        ReadGuard(const ReadGuard&) = delete;
        ReadGuard& operator=(const ReadGuard&) = delete;
        ReadGuard(ReadGuard&& other) noexcept : cell_(other.cell_), slot_(other.slot_) {
            other.cell_ = nullptr;
        }
        ReadGuard& operator=(ReadGuard&&) = delete;
        ~ReadGuard() {
            if (cell_ != nullptr) {
                cell_->slots_[slot_].readers.fetch_sub(1, std::memory_order_release);
            }
        }

        [[nodiscard]] const T& operator*() const { return *get(); }
        [[nodiscard]] const T* operator->() const { return get(); }
        [[nodiscard]] const T* get() const {
            const T* ptr = cell_->slots_[slot_].ptr;
            MW_MC_RACE_READ(ptr, "EpochCell payload");
            return ptr;
        }

    private:
        friend class EpochCell;
        ReadGuard(const EpochCell* cell, std::size_t slot) : cell_(cell), slot_(slot) {}

        const EpochCell* cell_;
        std::size_t slot_;
    };

    explicit EpochCell(std::unique_ptr<const T> initial) {
        MW_CHECK(initial != nullptr, "EpochCell: initial snapshot must be non-null");
        slots_[0].ptr = initial.release();
    }

    EpochCell(const EpochCell&) = delete;
    EpochCell& operator=(const EpochCell&) = delete;

    ~EpochCell() {
        delete slots_[0].ptr;
        delete slots_[1].ptr;
    }

    /// Lock-free reader entry: pin the active snapshot. Retries only while a
    /// concurrent flip lands between the load and the pin (at most once per
    /// publish, and publishes are rare).
    [[nodiscard]] ReadGuard read() const {
        for (;;) {
            const std::size_t idx = active_.load(std::memory_order_seq_cst);
            slots_[idx].readers.fetch_add(1, PinOrder);
            if (active_.load(std::memory_order_seq_cst) == idx) {
                return ReadGuard(this, idx);
            }
            slots_[idx].readers.fetch_sub(1, std::memory_order_release);
            MW_MC_YIELD("epoch-cell-repin");
        }
    }

    /// Writer entry: install `next` as the new active snapshot. Serialised on
    /// an internal mutex; the spin below only drains readers that pinned the
    /// slot before it went inactive one publish ago, so the wait is bounded
    /// by the longest reader critical section (a single decide() call).
    void publish(std::unique_ptr<const T> next) {
        MW_CHECK(next != nullptr, "EpochCell: published snapshot must be non-null");
        MutexLock lock(publish_mutex_);  // mw-analyze: allow(lock-free-confinement) cold writer path
        const std::size_t idx = active_.load(std::memory_order_relaxed) ^ 1U;  // relaxed: active_ only flips under publish_mutex_
        while (slots_[idx].readers.load(std::memory_order_acquire) != 0) {
            MW_MC_YIELD("epoch-cell-drain");
        }
        if (slots_[idx].ptr != nullptr) {
            MW_MC_RACE_WRITE(slots_[idx].ptr, "EpochCell payload");
        }
        delete slots_[idx].ptr;
        slots_[idx].ptr = next.release();
        active_.store(idx, FlipOrder);
    }

private:
    struct Slot {
        const T* ptr = nullptr;
        mutable Atomic<std::size_t> readers{0};
    };

    Slot slots_[2];
    Atomic<std::size_t> active_{0};
    Mutex publish_mutex_{LockRank::kSnapshotPublish};  // mw-analyze: allow(lock-free-confinement)
};

}  // namespace mw
