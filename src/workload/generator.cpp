#include "workload/generator.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace mw::workload {

std::string pattern_name(ArrivalPattern pattern) {
    switch (pattern) {
        case ArrivalPattern::kConstant: return "constant";
        case ArrivalPattern::kPoisson: return "poisson";
        case ArrivalPattern::kBursty: return "bursty";
        case ArrivalPattern::kDiurnal: return "diurnal";
    }
    return "?";
}

double expected_rate_at(const GeneratorConfig& config, double t) {
    switch (config.pattern) {
        case ArrivalPattern::kConstant:
        case ArrivalPattern::kPoisson:
        case ArrivalPattern::kBursty:
            return config.mean_rate_hz;
        case ArrivalPattern::kDiurnal:
            return config.mean_rate_hz *
                   (1.0 + config.diurnal_depth *
                              std::sin(2.0 * std::numbers::pi * t / config.diurnal_period_s));
    }
    return config.mean_rate_hz;
}

Trace generate_trace(const GeneratorConfig& config) {
    MW_CHECK(!config.model_names.empty(), "generator needs at least one model name");
    MW_CHECK(!config.batch_choices.empty(), "generator needs batch choices");
    MW_CHECK(config.duration_s > 0.0 && config.mean_rate_hz > 0.0, "bad generator timing");

    Rng rng(config.seed);
    Trace trace;

    auto emit = [&](double t, bool in_burst) {
        TimedRequest r;
        r.arrival_s = t;
        r.request.model_name =
            config.model_names[rng.below(config.model_names.size())];
        std::size_t batch_idx = rng.below(config.batch_choices.size());
        if (in_burst && config.bursts_increase_batch) {
            // Bias towards the upper half of the batch palette.
            batch_idx = std::max(batch_idx, config.batch_choices.size() / 2 +
                                                rng.below((config.batch_choices.size() + 1) / 2));
            batch_idx = std::min(batch_idx, config.batch_choices.size() - 1);
        }
        r.request.batch = config.batch_choices[batch_idx];
        r.request.policy = config.policy;
        trace.push_back(std::move(r));
    };

    switch (config.pattern) {
        case ArrivalPattern::kConstant: {
            const double gap = 1.0 / config.mean_rate_hz;
            for (double t = gap; t < config.duration_s; t += gap) emit(t, false);
            break;
        }
        case ArrivalPattern::kPoisson: {
            double t = 0.0;
            while (true) {
                t += rng.exponential(config.mean_rate_hz);
                if (t >= config.duration_s) break;
                emit(t, false);
            }
            break;
        }
        case ArrivalPattern::kBursty: {
            double t = 0.0;
            bool in_burst = false;
            double phase_end = rng.exponential(1.0 / config.gap_mean_len_s);
            while (t < config.duration_s) {
                if (in_burst) {
                    t += rng.exponential(config.burst_rate_hz);
                    if (t < phase_end && t < config.duration_s) emit(t, true);
                } else {
                    t = phase_end;  // idle through the gap
                }
                if (t >= phase_end) {
                    in_burst = !in_burst;
                    const double mean_len =
                        in_burst ? config.burst_mean_len_s : config.gap_mean_len_s;
                    phase_end = t + rng.exponential(1.0 / mean_len);
                }
            }
            break;
        }
        case ArrivalPattern::kDiurnal: {
            // Thinning: draw from the peak rate and accept with rate(t)/peak.
            const double peak = config.mean_rate_hz * (1.0 + config.diurnal_depth);
            double t = 0.0;
            while (true) {
                t += rng.exponential(peak);
                if (t >= config.duration_s) break;
                if (rng.uniform() < expected_rate_at(config, t) / peak) emit(t, false);
            }
            break;
        }
    }

    // Strictly increasing arrivals (exponential gaps can collide in theory).
    std::sort(trace.begin(), trace.end(),
              [](const TimedRequest& a, const TimedRequest& b) {
                  return a.arrival_s < b.arrival_s;
              });
    double last = -1.0;
    for (auto& r : trace) {
        if (r.arrival_s <= last) r.arrival_s = std::nextafter(last, 1e300);
        last = r.arrival_s;
    }
    return trace;
}

}  // namespace mw::workload
