// Lowering: nn::Model layer stacks -> operator DAGs with real footprints.
//
// Each layer becomes one OpNode whose cost is the layer's analytic
// LayerCost at the given batch and whose out_bytes is the actual activation
// tensor it produces (floats). The first node carries the model input as
// external_in_bytes, so a schedule's load phase pays for staging the batch
// across the spill link exactly like Device::execute prices bytes_in.
//
// run_grouped() executes the real network along a step grouping — tensors
// crossing group boundaries take an explicit spill round-trip (deep copy to
// "slow memory" and back), intra-group activations chain directly — which
// is what the fusion-is-bit-exact property test compares against plain
// Model::forward().
#pragma once

#include <cstddef>
#include <vector>

#include "graph/dag.hpp"
#include "nn/model.hpp"

namespace mw::graph {

/// A model lowered to a DAG; node ids equal layer indices (models are
/// linear pipelines, so the lowered graph is a chain).
struct LoweredGraph {
    Graph graph;
    std::vector<std::size_t> layer_of;  ///< node id -> model layer index
};

/// Lower `model` at batch size `batch`. The lowered chain's total cost is
/// identical to model.cost(batch).total (asserted by tests).
LoweredGraph lower(const nn::Model& model, std::size_t batch);

/// Execute the model along a grouping of its layer indices (each group a
/// contiguous, in-order slice of 0..layer_count-1). Boundary activations
/// are round-tripped through a deep copy; fused ones flow directly.
[[nodiscard]] Tensor run_grouped(const nn::Model& model, const Tensor& input,
                                 const std::vector<std::vector<std::size_t>>& groups,
                                 ThreadPool* pool = nullptr);

}  // namespace mw::graph
