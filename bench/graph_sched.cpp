// DAG scheduling bench: memory-hierarchy-aware placement+fusion vs the
// paper's monolithic whole-graph placement, swept across arithmetic
// intensity.
//
// Part 1 sweeps a fixed branchy graph shape from deeply memory-bound
// (0.125 flop/byte) to deeply compute-bound (512 flop/byte) and records,
// per intensity, the best single-device (monolithic) makespan, which device
// wins it, and the DAG-aware planner's makespan. The expected crossover
// inversion is asserted: at low intensity the winning monolithic device is
// a host-memory device (the PCIe boundary + per-op launch overhead sink the
// discrete GPU), at high intensity it is the discrete GPU.
//
// Part 2 reports the headline speedups on the two named workload families
// (make_memory_bound / make_compute_bound) and requires the DAG planner to
// beat monolithic placement on the memory-bound family.
//
// Part 3 measures planner throughput — plans per second on the reference
// memory-bound graph with a cold cache each call — which is the
// `sustained_qps` the CI gate compares against bench/baselines/
// BENCH_graph.json.
//
// Every schedule produced anywhere in this bench is replayed through the
// independent verifier (a violation aborts the bench), and exported via
// MW_SCHEDULE_EXPORT_DIR for CI's out-of-process verification job.
//
// Flags: --quick (CI mode: fewer sweep points and planner iterations);
// --json PATH writes the headline numbers for tools/bench-compare.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "device/params.hpp"
#include "graph/planner.hpp"
#include "graph/schedule.hpp"
#include "graph/synth.hpp"
#include "graph/verify.hpp"

using namespace mw;

namespace {

std::vector<graph::PlannerDevice> testbed() {
    std::vector<graph::PlannerDevice> devices(3);
    devices[0].params = device::i7_8700_params();
    devices[1].params = device::uhd630_params();
    devices[2].params = device::gtx1080ti_params();
    return devices;
}

void verify_or_die(const graph::Graph& g, const graph::Schedule& s, const char* what) {
    const auto violations = graph::verify_schedule(g, s);
    if (!violations.empty()) {
        std::fprintf(stderr, "BENCH BUG: %s schedule for %s infeasible:\n%s", what,
                     g.name().c_str(), graph::format_violations(violations).c_str());
        std::exit(1);
    }
}

struct Summary {
    double plans_per_sec = 0.0;
    double dag_speedup_membound = 0.0;
    double dag_speedup_computebound = 0.0;
    double crossover_intensity = 0.0;
    double membound_mono_s = 0.0;
    double membound_dag_s = 0.0;
};

/// Name of the device the monolithic plan runs on (all steps share one).
std::string mono_device(const graph::Schedule& s) {
    return s.steps.empty() ? std::string("?") : s.devices[s.steps.front().device].name;
}

double intensity_sweep(bool quick, std::size_t* exported) {
    const graph::GraphPlanner planner;
    const auto devices = testbed();

    std::printf("== Part 1: arithmetic-intensity sweep (branchy 6x3 graph) ==\n");
    std::printf("%12s %12s %10s %12s %10s\n", "flop/byte", "mono [ms]", "winner", "dag [ms]",
                "speedup");

    double crossover = 0.0;
    std::string prev_winner;
    bool low_end_host = false;
    bool high_end_dgpu = false;
    const double step = quick ? 4.0 : 2.0;
    std::size_t point = 0;
    for (double intensity = 0.125; intensity <= 512.0; intensity *= step, ++point) {
        graph::SynthConfig cfg;
        cfg.stages = 6;
        cfg.branches = 3;
        cfg.tensor_mb = 1.0;
        cfg.flops_per_byte = intensity;
        graph::Graph g = graph::make_synthetic(cfg);
        g.set_name("sweep-i" + std::to_string(point));

        const graph::Schedule mono =
            planner.plan_monolithic(g, devices, graph::Objective::kMakespan);
        const graph::Schedule dag = planner.plan(g, devices, graph::Objective::kMakespan);
        verify_or_die(g, mono, "monolithic");
        verify_or_die(g, dag, "dag");
        if (!graph::maybe_export_schedule(g, dag, g.name()).empty()) ++(*exported);

        const std::string winner = mono_device(mono);
        if (intensity < 0.3 && winner != "gtx1080ti") low_end_host = true;
        if (intensity > 300.0 && winner == "gtx1080ti") high_end_dgpu = true;
        if (!prev_winner.empty() && prev_winner != "gtx1080ti" && winner == "gtx1080ti" &&
            crossover == 0.0) {
            crossover = intensity;
        }
        prev_winner = winner;

        std::printf("%12.3f %12.3f %10s %12.3f %9.2fx\n", intensity,
                    mono.makespan_s() * 1e3, winner.c_str(), dag.makespan_s() * 1e3,
                    mono.makespan_s() / dag.makespan_s());
    }

    MW_CHECK(low_end_host,
             "crossover inversion broken: memory-bound graphs no longer favour a host-memory "
             "device under monolithic placement");
    MW_CHECK(high_end_dgpu,
             "crossover inversion broken: compute-bound graphs no longer favour the discrete "
             "GPU under monolithic placement");
    MW_CHECK(crossover > 0.0, "no crossover point found in the sweep");
    std::printf("crossover: monolithic winner flips to the dGPU at ~%.1f flop/byte\n\n",
                crossover);
    return crossover;
}

void workload_families(Summary& s, std::size_t* exported) {
    const graph::GraphPlanner planner;
    const auto devices = testbed();

    std::printf("== Part 2: workload families (DAG-aware vs monolithic) ==\n");
    const struct {
        const char* label;
        graph::Graph g;
        double* speedup;
        bool require_win;
    } cases[] = {
        {"memory-bound", graph::make_memory_bound(), &s.dag_speedup_membound, true},
        {"compute-bound", graph::make_compute_bound(), &s.dag_speedup_computebound, false},
    };
    for (const auto& c : cases) {
        const graph::Schedule mono =
            planner.plan_monolithic(c.g, devices, graph::Objective::kMakespan);
        const graph::Schedule dag = planner.plan(c.g, devices, graph::Objective::kMakespan);
        verify_or_die(c.g, mono, "monolithic");
        verify_or_die(c.g, dag, "dag");
        if (!graph::maybe_export_schedule(c.g, dag, c.g.name()).empty()) ++(*exported);

        *c.speedup = mono.makespan_s() / dag.makespan_s();
        std::printf(
            "  %-14s mono %8.3f ms on %-10s | dag %8.3f ms, %zu steps, %zu fused ops, "
            "spill %6.3f ms -> %5.2fx\n",
            c.label, mono.makespan_s() * 1e3, mono_device(mono).c_str(),
            dag.makespan_s() * 1e3, dag.steps.size(), dag.fused_ops(),
            dag.spill_seconds() * 1e3, *c.speedup);
        if (c.require_win) {
            s.membound_mono_s = mono.makespan_s();
            s.membound_dag_s = dag.makespan_s();
            MW_CHECK(*c.speedup > 1.0,
                     "the memory-hierarchy-aware planner no longer beats monolithic placement "
                     "on the memory-bound family");
        }
    }
    std::printf("\n");
}

double planner_throughput(bool quick) {
    const auto devices = testbed();
    const graph::Graph reference = graph::make_memory_bound();
    const std::size_t iterations = quick ? 200 : 1000;

    std::printf("== Part 3: planner throughput (cold cache per plan) ==\n");
    Stopwatch watch;
    double sink = 0.0;
    for (std::size_t i = 0; i < iterations; ++i) {
        const graph::GraphPlanner planner;  // fresh: no memoisation help
        const graph::Schedule dag = planner.plan(reference, devices,
                                                 graph::Objective::kMakespan);
        sink += dag.makespan_s();
    }
    const double elapsed = watch.elapsed();
    const double per_sec = static_cast<double>(iterations) / elapsed;
    std::printf("  %zu plans of %zu-node graph in %.3f s -> %.1f plans/s (checksum %.6f)\n\n",
                iterations, reference.size(), elapsed, per_sec, sink);
    return per_sec;
}

void write_json(const char* path, const Summary& s) {
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path);
        std::exit(1);
    }
    std::fprintf(f,
                 "{\n"
                 "  \"sustained_qps\": %.3f,\n"
                 "  \"dag_speedup_membound\": %.4f,\n"
                 "  \"dag_speedup_computebound\": %.4f,\n"
                 "  \"crossover_intensity\": %.3f,\n"
                 "  \"membound_mono_makespan_s\": %.9f,\n"
                 "  \"membound_dag_makespan_s\": %.9f\n"
                 "}\n",
                 s.plans_per_sec, s.dag_speedup_membound, s.dag_speedup_computebound,
                 s.crossover_intensity, s.membound_mono_s, s.membound_dag_s);
    std::fclose(f);
    std::printf("wrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
    bool quick = false;
    const char* json_path = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[++i];
        } else {
            std::fprintf(stderr, "usage: %s [--quick] [--json PATH]\n", argv[0]);
            return 2;
        }
    }

    std::size_t exported = 0;
    Summary summary;
    summary.crossover_intensity = intensity_sweep(quick, &exported);
    workload_families(summary, &exported);
    summary.plans_per_sec = planner_throughput(quick);

    if (exported > 0) {
        std::printf("exported %zu schedules for out-of-process verification\n", exported);
    }
    if (json_path != nullptr) write_json(json_path, summary);
    return 0;
}
