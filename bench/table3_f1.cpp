// Reproduces Table III: F1-score, precision and recall of the Random Forest
// scheduler, obtained with the stratified *nested* cross-validation
// protocol of §V-C over (a randomised subsample of) the Table I grid.
#include <cstdio>
#include <filesystem>

#include "common/csv.hpp"
#include "common/format.hpp"
#include "common/table.hpp"
#include "nn/zoo.hpp"
#include "sched/scheduler_trainer.hpp"

using namespace mw;

int main() {
    auto registry = device::DeviceRegistry::standard_testbed({.noise_sigma = 0.08});
    std::printf("Building the scheduler dataset...\n");
    const auto dataset =
        sched::build_scheduler_dataset(registry, nn::zoo::all_models(), {.repeats = 2});

    ThreadPool pool;
    // Randomised search over the Table I grid (1344 points is far past the
    // plateau; 24 sampled points land on it reliably).
    const auto grid = sched::sample_grid(sched::paper_hyperparameter_grid(), 24, 5);
    std::printf("Nested stratified CV (5 outer x 3 inner folds, %zu grid points)...\n",
                grid.size());
    const auto trained =
        sched::train_random_forest_scheduler(dataset, grid, 5, 3, /*seed=*/42, &pool);

    TextTable table;
    table.header({"F1-score", "Precision", "Recall", "Accuracy"});
    const auto& w = trained.cv.outer.weighted;
    table.row({format("{:.2f}%", w.f1 * 100.0), format("{:.2f}%", w.precision * 100.0),
               format("{:.2f}%", w.recall * 100.0),
               format("{:.2f}%", trained.cv.outer.accuracy * 100.0)});
    std::printf("\n=== Table III: Random Forest scheduler efficiency ===\n");
    table.print();
    std::printf("\nPaper reference: F1 93.51%%, precision 93.22%%, recall 93.21%%.\n");

    std::printf("\nChosen hyperparameters (modal winner of the inner searches):\n");
    for (const auto& [k, v] : trained.chosen_params) {
        std::printf("  %-18s %g\n", k.c_str(), v);
    }
    std::printf("Total training time: %s (paper: ~26 s in scikit-learn)\n",
                format_duration(trained.train_seconds).c_str());

    std::filesystem::create_directories("bench_out");
    CsvWriter csv("bench_out/table3_f1.csv");
    csv.row({"f1", "precision", "recall", "accuracy", "train_seconds"});
    csv.row({format("{}", w.f1), format("{}", w.precision), format("{}", w.recall),
             format("{}", trained.cv.outer.accuracy), format("{}", trained.train_seconds)});
    return 0;
}
