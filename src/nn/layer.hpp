// The layer abstraction of the inference engine.
//
// A Layer is a pure function from an input activation tensor to an output
// activation tensor, plus (for trainable layers) parameter storage and a
// backward pass. Layers also self-report an analytic cost profile — the
// execution model in src/device prices a model run from the sum of its
// layers' costs, mirroring how each layer maps to one OpenCL kernel launch
// in the paper's implementation.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "tensor/tensor.hpp"

namespace mw::nn {

/// Analytic cost profile of one layer at a given batch size.
struct LayerCost {
    double flops = 0.0;          ///< multiply-add counted as 2 flops
    double bytes_in = 0.0;       ///< activation bytes read
    double bytes_out = 0.0;      ///< activation bytes written
    double bytes_weights = 0.0;  ///< parameter bytes streamed
    double work_items = 0.0;     ///< OpenCL work-items (thread-per-node, §IV-B)
    int kernel_launches = 0;     ///< device kernel invocations

    LayerCost& operator+=(const LayerCost& other) {
        flops += other.flops;
        bytes_in += other.bytes_in;
        bytes_out += other.bytes_out;
        bytes_weights += other.bytes_weights;
        work_items += other.work_items;
        kernel_launches += other.kernel_launches;
        return *this;
    }
};

/// Abstract inference/training layer.
class Layer {
public:
    virtual ~Layer() = default;

    /// Human-readable kind, e.g. "dense(800, relu)".
    [[nodiscard]] virtual std::string describe() const = 0;

    /// Output shape produced for a given input shape; throws
    /// mw::InvalidArgument when the input shape is incompatible.
    [[nodiscard]] virtual Shape output_shape(const Shape& input) const = 0;

    /// Compute out = f(in). `out` must already have output_shape(in.shape()).
    /// `pool` may be null (serial execution).
    virtual void forward(const Tensor& in, Tensor& out, ThreadPool* pool) const = 0;

    /// Backpropagate: given the forward pair (in, out) and dL/dout, compute
    /// dL/din into `din` and accumulate parameter gradients. Layers without
    /// parameters only propagate. Default: throws (inference-only layer).
    virtual void backward(const Tensor& in, const Tensor& out, const Tensor& dout, Tensor& din,
                          ThreadPool* pool);

    /// Analytic cost at batch size `batch` for the given input shape.
    [[nodiscard]] virtual LayerCost cost(const Shape& input) const = 0;

    /// Pairs of (parameter tensor, gradient tensor) owned by the layer;
    /// empty for parameter-free layers. The trainer and the weights I/O
    /// module iterate these in order.
    struct ParamBinding {
        Tensor* value;
        Tensor* grad;
    };
    [[nodiscard]] virtual std::vector<ParamBinding> param_bindings() { return {}; }

    /// Total trainable scalar count.
    [[nodiscard]] std::size_t param_count() {
        std::size_t n = 0;
        for (const auto& b : param_bindings()) n += b.value->numel();
        return n;
    }

    /// Reset accumulated gradients to zero.
    void zero_grads() {
        for (auto& b : param_bindings()) b.grad->fill(0.0F);
    }
};

using LayerPtr = std::unique_ptr<Layer>;

inline void Layer::backward(const Tensor& /*in*/, const Tensor& /*out*/, const Tensor& /*dout*/,
                            Tensor& /*din*/, ThreadPool* /*pool*/) {
    throw Error("layer `" + describe() + "` does not implement backward");
}

}  // namespace mw::nn
