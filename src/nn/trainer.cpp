#include "nn/trainer.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>

#include "common/error.hpp"
#include "common/logging.hpp"

namespace mw::nn {
namespace {

/// Copy rows [offset, offset+count) of the dataset into a batch tensor
/// matching the model's input shape.
Tensor slice_batch(const Model& model, const Tensor& x, const std::vector<std::size_t>& order,
                   std::size_t offset, std::size_t count) {
    const std::size_t sample_elems = x.numel() / x.shape()[0];
    Tensor batch(model.input_shape(count));
    MW_CHECK(batch.numel() == count * sample_elems, "dataset sample size mismatch");
    for (std::size_t i = 0; i < count; ++i) {
        const std::size_t src = order[offset + i];
        std::memcpy(batch.data() + i * sample_elems, x.data() + src * sample_elems,
                    sample_elems * sizeof(float));
    }
    return batch;
}

}  // namespace

double cross_entropy(const Tensor& probs, const std::vector<std::size_t>& labels,
                     std::size_t offset, std::size_t count) {
    const std::size_t classes = probs.shape()[1];
    double loss = 0.0;
    for (std::size_t i = 0; i < count; ++i) {
        const std::size_t label = labels[offset + i];
        MW_CHECK(label < classes, "label out of range");
        const float p = std::max(probs.at(i, label), 1e-12F);
        loss -= std::log(static_cast<double>(p));
    }
    return loss / static_cast<double>(count);
}

std::vector<EpochStats> train(Model& model, const Tensor& x, const std::vector<std::size_t>& y,
                              const TrainConfig& config, ThreadPool* pool) {
    const std::size_t n = x.shape()[0];
    MW_CHECK(n == y.size(), "dataset X/y size mismatch");
    MW_CHECK(config.batch_size > 0, "batch_size must be positive");
    MW_CHECK(model.spec().softmax_output, "trainer requires a softmax output head");

    // Momentum buffers, one per parameter tensor.
    std::vector<Tensor> velocity;
    for (std::size_t li = 0; li < model.layer_count(); ++li) {
        for (const auto& b : model.layer(li).param_bindings()) {
            velocity.emplace_back(b.value->shape());
        }
    }

    Rng rng(config.shuffle_seed);
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);

    std::vector<EpochStats> history;
    for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
        rng.shuffle(order);
        double epoch_loss = 0.0;
        std::size_t correct = 0;
        std::size_t batches = 0;

        for (std::size_t offset = 0; offset < n; offset += config.batch_size) {
            const std::size_t count = std::min(config.batch_size, n - offset);
            const Tensor batch = slice_batch(model, x, order, offset, count);

            // Forward, collecting activations for backprop.
            const std::vector<Tensor> acts = model.forward_collect(batch, pool);
            const Tensor& probs = acts.back();

            std::vector<std::size_t> batch_labels(count);
            for (std::size_t i = 0; i < count; ++i) batch_labels[i] = y[order[offset + i]];
            epoch_loss += cross_entropy(probs, batch_labels, 0, count);
            ++batches;
            for (std::size_t i = 0; i < count; ++i) {
                const float* row = probs.data() + i * probs.shape()[1];
                const auto pred = static_cast<std::size_t>(std::distance(
                    row, std::max_element(row, row + probs.shape()[1])));
                if (pred == batch_labels[i]) ++correct;
            }

            // dL/dz of softmax+CE, averaged over the batch.
            Tensor dout(probs.shape());
            const float inv = 1.0F / static_cast<float>(count);
            for (std::size_t i = 0; i < count; ++i) {
                const float* p = probs.data() + i * probs.shape()[1];
                float* d = dout.data() + i * probs.shape()[1];
                for (std::size_t c = 0; c < probs.shape()[1]; ++c) {
                    d[c] = (p[c] - (c == batch_labels[i] ? 1.0F : 0.0F)) * inv;
                }
            }

            // Backward through the pipeline.
            for (std::size_t li = 0; li < model.layer_count(); ++li) model.layer(li).zero_grads();
            Tensor current_dout = std::move(dout);
            for (std::size_t li = model.layer_count(); li-- > 0;) {
                const Tensor& in = li == 0 ? batch : acts[li - 1];
                Tensor din(in.shape());
                model.layer(li).backward(in, acts[li], current_dout, din, pool);
                current_dout = std::move(din);
            }

            // SGD with momentum (and optional L2).
            std::size_t vi = 0;
            for (std::size_t li = 0; li < model.layer_count(); ++li) {
                for (const auto& b : model.layer(li).param_bindings()) {
                    float* v = velocity[vi].data();
                    float* w = b.value->data();
                    const float* g = b.grad->data();
                    for (std::size_t k = 0; k < b.value->numel(); ++k) {
                        float grad = g[k] + config.weight_decay * w[k];
                        v[k] = config.momentum * v[k] - config.learning_rate * grad;
                        w[k] += v[k];
                    }
                    ++vi;
                }
            }
        }

        EpochStats stats;
        stats.loss = epoch_loss / static_cast<double>(std::max<std::size_t>(1, batches));
        stats.accuracy = static_cast<double>(correct) / static_cast<double>(n);
        history.push_back(stats);
        if (config.verbose) {
            log::info("epoch {}: loss={:.4f} acc={:.3f}", epoch, stats.loss, stats.accuracy);
        }
    }
    return history;
}

double evaluate_accuracy(const Model& model, const Tensor& x, const std::vector<std::size_t>& y,
                         ThreadPool* pool) {
    const std::size_t n = x.shape()[0];
    MW_CHECK(n == y.size(), "dataset X/y size mismatch");
    const std::size_t sample_elems = x.numel() / n;
    constexpr std::size_t kChunk = 256;
    std::size_t correct = 0;
    for (std::size_t offset = 0; offset < n; offset += kChunk) {
        const std::size_t count = std::min(kChunk, n - offset);
        Tensor batch(model.input_shape(count));
        std::memcpy(batch.data(), x.data() + offset * sample_elems,
                    count * sample_elems * sizeof(float));
        const auto preds = model.classify(batch, pool);
        for (std::size_t i = 0; i < count; ++i) {
            if (preds[i] == y[offset + i]) ++correct;
        }
    }
    return static_cast<double>(correct) / static_cast<double>(n);
}

}  // namespace mw::nn
