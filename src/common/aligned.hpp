// Cache-line / SIMD-aligned storage for tensor buffers.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <memory>
#include <new>

namespace mw {

inline constexpr std::size_t kCacheLineBytes = 64;
inline constexpr std::size_t kSimdAlignBytes = 64;  // AVX-512-friendly

/// Deleter for over-aligned allocations made with aligned_alloc_floats().
struct AlignedFree {
    void operator()(void* p) const noexcept { std::free(p); }
};

using AlignedFloatPtr = std::unique_ptr<float[], AlignedFree>;

/// Allocate `n` floats aligned to kSimdAlignBytes; throws std::bad_alloc.
inline AlignedFloatPtr aligned_alloc_floats(std::size_t n) {
    if (n == 0) return {};
    const std::size_t bytes = ((n * sizeof(float) + kSimdAlignBytes - 1) / kSimdAlignBytes) *
                              kSimdAlignBytes;
    void* p = std::aligned_alloc(kSimdAlignBytes, bytes);
    if (!p) throw std::bad_alloc();
    return AlignedFloatPtr(static_cast<float*>(p));
}

}  // namespace mw
