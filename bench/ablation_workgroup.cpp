// Work-group geometry (§IV-B): "the best configuration for the CPU is 4096
// work-items per work-group, whilst the best configuration for the GPU is
// 256". Sweeps the group size on each device's work-group model and prints
// the relative kernel efficiency.
#include <cstdio>
#include <filesystem>

#include "common/csv.hpp"
#include "common/format.hpp"
#include "common/table.hpp"
#include "device/exec_model.hpp"

using namespace mw;
using namespace mw::device;

int main() {
    constexpr double kTotalItems = 1 << 20;  // a large classification batch
    const DeviceParams devices[] = {i7_8700_params(), uhd630_params(), gtx1080ti_params()};

    std::filesystem::create_directories("bench_out");
    CsvWriter csv("bench_out/ablation_workgroup.csv");
    csv.row({"device", "group_size", "efficiency"});

    TextTable table;
    std::vector<std::string> header{"group size"};
    for (const auto& d : devices) header.push_back(d.name);
    table.header(header);

    std::vector<std::size_t> sweep;
    for (std::size_t wg = 32; wg <= 16384; wg *= 2) sweep.push_back(wg);

    std::vector<std::pair<double, std::size_t>> best(3, {0.0, 0});
    for (const std::size_t wg : sweep) {
        std::vector<std::string> row{std::to_string(wg)};
        for (std::size_t d = 0; d < 3; ++d) {
            const double eff = work_group_efficiency(devices[d], static_cast<double>(wg),
                                                     kTotalItems);
            row.push_back(format("{:.3f}", eff));
            csv.row({devices[d].name, std::to_string(wg), format("{}", eff)});
            if (eff > best[d].first) best[d] = {eff, wg};
        }
        table.row(std::move(row));
    }

    std::printf("=== Work-group efficiency sweep (%g work-items) ===\n", kTotalItems);
    table.print();
    std::printf("\nBest group size per device:\n");
    for (std::size_t d = 0; d < 3; ++d) {
        std::printf("  %-10s %zu items/group\n", devices[d].name.c_str(), best[d].second);
    }
    std::printf("Paper: CPU best at 4096, discrete GPU best at 256.\n");
    return 0;
}
