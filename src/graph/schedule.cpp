#include "graph/schedule.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace mw::graph {
namespace {

// Names are emitted with spaces mapped to '\x01' so every record stays
// whitespace-tokenisable; layer describe() strings contain spaces and commas
// but never control characters.
std::string encode_name(const std::string& name) {
    std::string out = name;
    std::replace(out.begin(), out.end(), ' ', '\x01');
    return out.empty() ? std::string("\x01") : out;
}

std::string decode_name(const std::string& token) {
    std::string out = token;
    std::replace(out.begin(), out.end(), '\x01', ' ');
    if (out == " ") out.clear();
    return out;
}

[[noreturn]] void malformed(std::size_t line, const std::string& why) {
    throw IoError("schedule file line " + std::to_string(line) + ": " + why);
}

}  // namespace

double Schedule::makespan_s() const {
    double end = 0.0;
    for (const Step& step : steps) end = std::max(end, step.end_s());
    return end;
}

double Schedule::total_energy_j() const {
    double j = 0.0;
    for (const Step& step : steps) j += step.energy_j;
    return j;
}

double Schedule::spill_seconds() const {
    double s = 0.0;
    for (const Step& step : steps) s += step.load_s + step.store_s;
    return s;
}

std::size_t Schedule::fused_ops() const {
    std::size_t n = 0;
    for (const Step& step : steps) {
        if (step.nodes.size() > 1) n += step.nodes.size();
    }
    return n;
}

void Schedule::save(std::ostream& os, const Graph& graph) const {
    os.precision(17);
    os << "mwsched 1\n";
    os << "graph " << encode_name(graph.name()) << " " << graph.size() << "\n";
    for (NodeId id = 0; id < graph.size(); ++id) {
        const OpNode& node = graph.node(id);
        os << "node " << id << " " << encode_name(node.name) << " " << node.cost.flops << " "
           << node.cost.bytes_in << " " << node.cost.bytes_out << " " << node.cost.bytes_weights
           << " " << node.cost.work_items << " " << node.cost.kernel_launches << " "
           << node.out_bytes << " " << node.external_in_bytes << " " << node.inputs.size();
        for (const NodeId u : node.inputs) os << " " << u;
        os << "\n";
    }
    for (const MemorySpec& device : devices) {
        os << "device " << encode_name(device.name) << " " << device.scratchpad_bytes << " "
           << device.link_gbps << " " << device.link_latency_s << " " << device.local_gbps
           << "\n";
    }
    for (const Step& step : steps) {
        os << "step " << step.device << " " << step.start_s << " " << step.load_s << " "
           << step.compute_s << " " << step.store_s << " " << step.energy_j << " "
           << step.nodes.size();
        for (const NodeId id : step.nodes) os << " " << id;
        os << "\n";
    }
    os << "end\n";
}

void Schedule::save_file(const std::string& path, const Graph& graph) const {
    std::ofstream os(path);
    if (!os) throw IoError("cannot open schedule file for writing: " + path);
    save(os, graph);
    if (!os) throw IoError("failed writing schedule file: " + path);
}

std::pair<Graph, Schedule> Schedule::load(std::istream& is) {
    std::string line;
    std::size_t line_no = 0;
    const auto next_line = [&]() -> bool {
        while (std::getline(is, line)) {
            ++line_no;
            if (!line.empty()) return true;
        }
        return false;
    };

    if (!next_line() || line != "mwsched 1") malformed(line_no, "missing `mwsched 1` header");

    Graph graph;
    Schedule schedule;
    bool saw_graph = false;
    bool saw_end = false;
    std::size_t declared_nodes = 0;

    while (next_line()) {
        std::istringstream ss(line);
        std::string kind;
        ss >> kind;
        if (kind == "graph") {
            std::string name;
            if (!(ss >> name >> declared_nodes)) malformed(line_no, "bad graph record");
            graph.set_name(decode_name(name));
            schedule.graph_name = graph.name();
            saw_graph = true;
        } else if (kind == "node") {
            if (!saw_graph) malformed(line_no, "node record before graph record");
            std::size_t id = 0;
            std::string name;
            OpNode node;
            std::size_t n_inputs = 0;
            if (!(ss >> id >> name >> node.cost.flops >> node.cost.bytes_in >>
                  node.cost.bytes_out >> node.cost.bytes_weights >> node.cost.work_items >>
                  node.cost.kernel_launches >> node.out_bytes >> node.external_in_bytes >>
                  n_inputs)) {
                malformed(line_no, "bad node record");
            }
            if (id != graph.size()) malformed(line_no, "node ids must be dense and in order");
            node.name = decode_name(name);
            node.inputs.resize(n_inputs);
            for (std::size_t i = 0; i < n_inputs; ++i) {
                if (!(ss >> node.inputs[i])) malformed(line_no, "truncated node input list");
                if (node.inputs[i] >= id) {
                    malformed(line_no, "node input must reference an earlier node");
                }
            }
            graph.add_node(std::move(node));
        } else if (kind == "device") {
            MemorySpec device;
            std::string name;
            if (!(ss >> name >> device.scratchpad_bytes >> device.link_gbps >>
                  device.link_latency_s >> device.local_gbps)) {
                malformed(line_no, "bad device record");
            }
            device.name = decode_name(name);
            schedule.devices.push_back(std::move(device));
        } else if (kind == "step") {
            Step step;
            std::size_t n_nodes = 0;
            if (!(ss >> step.device >> step.start_s >> step.load_s >> step.compute_s >>
                  step.store_s >> step.energy_j >> n_nodes)) {
                malformed(line_no, "bad step record");
            }
            step.nodes.resize(n_nodes);
            for (std::size_t i = 0; i < n_nodes; ++i) {
                if (!(ss >> step.nodes[i])) malformed(line_no, "truncated step node list");
            }
            schedule.steps.push_back(std::move(step));
        } else if (kind == "end") {
            saw_end = true;
            break;
        } else {
            malformed(line_no, "unknown record kind `" + kind + "`");
        }
    }

    if (!saw_graph) malformed(line_no, "missing graph record");
    if (!saw_end) malformed(line_no, "missing end record (truncated file)");
    if (graph.size() != declared_nodes) {
        malformed(line_no, "graph declared " + std::to_string(declared_nodes) + " nodes, found " +
                               std::to_string(graph.size()));
    }
    graph.validate();
    return {std::move(graph), std::move(schedule)};
}

std::pair<Graph, Schedule> Schedule::load_file(const std::string& path) {
    std::ifstream is(path);
    if (!is) throw IoError("cannot open schedule file: " + path);
    return load(is);
}

std::string maybe_export_schedule(const Graph& graph, const Schedule& schedule,
                                  const std::string& stem) {
    const char* dir = std::getenv("MW_SCHEDULE_EXPORT_DIR");
    if (dir == nullptr || *dir == '\0') return {};
    std::string path = std::string(dir) + "/" + stem + ".mws";
    schedule.save_file(path, graph);
    return path;
}

}  // namespace mw::graph
