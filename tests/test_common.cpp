// Unit tests for the foundation library: RNG, stats, thread pool, CSV,
// tables, units and the formatting shim.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <set>
#include <thread>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/format.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "common/units.hpp"

namespace {

using namespace mw;

TEST(Rng, DeterministicAcrossInstances) {
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
    Rng a(1);
    Rng b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i) {
        if (a() == b()) ++equal;
    }
    EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, BelowIsUnbiasedish) {
    Rng rng(99);
    std::vector<int> counts(5, 0);
    constexpr int kDraws = 50000;
    for (int i = 0; i < kDraws; ++i) ++counts[rng.below(5)];
    for (const int c : counts) {
        EXPECT_NEAR(static_cast<double>(c) / kDraws, 0.2, 0.02);
    }
}

TEST(Rng, BelowRejectsZero) { EXPECT_THROW(Rng(1).below(0), InvalidArgument); }

TEST(Rng, NormalMoments) {
    Rng rng(5);
    OnlineStats stats;
    for (int i = 0; i < 50000; ++i) stats.add(rng.normal(3.0, 2.0));
    EXPECT_NEAR(stats.mean(), 3.0, 0.05);
    EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Rng, LognormalFactorMedianNearOne) {
    Rng rng(11);
    std::vector<double> xs;
    for (int i = 0; i < 20001; ++i) xs.push_back(rng.lognormal_factor(0.2));
    EXPECT_NEAR(median(xs), 1.0, 0.02);
    EXPECT_EQ(rng.lognormal_factor(0.0), 1.0);
}

TEST(Rng, ExponentialMean) {
    Rng rng(13);
    OnlineStats stats;
    for (int i = 0; i < 50000; ++i) stats.add(rng.exponential(4.0));
    EXPECT_NEAR(stats.mean(), 0.25, 0.01);
}

TEST(Rng, ShufflePermutes) {
    Rng rng(17);
    std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
    auto original = v;
    rng.shuffle(v);
    EXPECT_NE(v, original);
    std::set<int> s(v.begin(), v.end());
    EXPECT_EQ(s.size(), 10U);
}

TEST(Rng, SplitIsIndependent) {
    Rng parent(21);
    Rng child = parent.split();
    EXPECT_NE(parent(), child());
}

TEST(OnlineStats, MatchesBatchFormulas) {
    Rng rng(3);
    OnlineStats stats;
    std::vector<double> xs;
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.uniform(-5.0, 5.0);
        xs.push_back(x);
        stats.add(x);
    }
    EXPECT_NEAR(stats.mean(), mean(xs), 1e-9);
    EXPECT_NEAR(stats.stddev(), stddev(xs), 1e-9);
    EXPECT_EQ(stats.count(), 1000U);
}

TEST(OnlineStats, MergeEqualsSequential) {
    Rng rng(4);
    OnlineStats whole;
    OnlineStats left;
    OnlineStats right;
    for (int i = 0; i < 500; ++i) {
        const double x = rng.normal();
        whole.add(x);
        (i % 2 == 0 ? left : right).add(x);
    }
    left.merge(right);
    EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
    EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
    EXPECT_EQ(left.count(), whole.count());
    EXPECT_EQ(left.min(), whole.min());
    EXPECT_EQ(left.max(), whole.max());
}

TEST(Ewma, ConvergesToConstant) {
    Ewma ewma(0.3);
    for (int i = 0; i < 100; ++i) ewma.add(5.0);
    EXPECT_NEAR(ewma.value(), 5.0, 1e-9);
}

TEST(Ewma, FirstValueInitialises) {
    Ewma ewma(0.1);
    EXPECT_TRUE(ewma.empty());
    EXPECT_EQ(ewma.add(42.0), 42.0);
    EXPECT_FALSE(ewma.empty());
}

TEST(Ewma, RejectsBadAlpha) {
    EXPECT_THROW(Ewma(0.0), InvalidArgument);
    EXPECT_THROW(Ewma(1.5), InvalidArgument);
}

TEST(Stats, Percentiles) {
    std::vector<double> xs{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
    EXPECT_NEAR(percentile(xs, 0), 1.0, 1e-12);
    EXPECT_NEAR(percentile(xs, 100), 10.0, 1e-12);
    EXPECT_NEAR(median(xs), 5.5, 1e-12);
    EXPECT_NEAR(percentile(xs, 25), 3.25, 1e-12);
}

TEST(Stats, GeomeanAndArgminmax) {
    std::vector<double> xs{2.0, 8.0};
    EXPECT_NEAR(geomean(xs), 4.0, 1e-12);
    std::vector<double> ys{3.0, 1.0, 2.0};
    EXPECT_EQ(argmin(ys), 1U);
    EXPECT_EQ(argmax(ys), 0U);
    EXPECT_THROW(geomean(std::vector<double>{1.0, -1.0}), InvalidArgument);
}

TEST(ThreadPool, ParallelForCoversRange) {
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallel_for(0, 1000, [&](std::size_t i) { hits[i]++; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
    ThreadPool pool(2);
    bool touched = false;
    pool.parallel_for(5, 5, [&](std::size_t) { touched = true; });
    EXPECT_FALSE(touched);
}

TEST(ThreadPool, ExceptionsPropagate) {
    ThreadPool pool(2);
    EXPECT_THROW(
        pool.parallel_for(0, 100, [](std::size_t i) {
            if (i == 37) throw std::runtime_error("boom");
        }, 1),
        std::runtime_error);
}

TEST(ThreadPool, SubmitReturnsFuture) {
    ThreadPool pool(2);
    auto f = pool.submit([] {});
    f.get();
    SUCCEED();
}

TEST(Csv, RoundTripWithQuoting) {
    const std::string path = "/tmp/mw_test_csv.csv";
    {
        CsvWriter w(path);
        w.row({"a", "b,with,commas", "c\"quoted\""});
        w.row({"1", "2", "3"});
    }
    const auto rows = read_csv(path);
    ASSERT_EQ(rows.size(), 2U);
    EXPECT_EQ(rows[0][1], "b,with,commas");
    EXPECT_EQ(rows[0][2], "c\"quoted\"");
    EXPECT_EQ(rows[1][0], "1");
    std::filesystem::remove(path);
}

TEST(Csv, ReadMissingFileThrows) { EXPECT_THROW(read_csv("/nonexistent/x.csv"), IoError); }

TEST(Table, RendersAligned) {
    TextTable t;
    t.header({"col", "value"});
    t.row({"x", "1"});
    t.row({"longer", "22"});
    const std::string s = t.str();
    EXPECT_NE(s.find("col    | value"), std::string::npos);
    EXPECT_NE(s.find("longer | 22"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
    TextTable t;
    t.header({"a", "b"});
    EXPECT_THROW(t.row({"only-one"}), InvalidArgument);
}

TEST(Units, Throughput) {
    EXPECT_EQ(format_throughput(15e9), "15 Gbit/s");
    EXPECT_EQ(format_throughput(52.1e6), "52.1 Mbit/s");
    EXPECT_NEAR(throughput_bps(1000.0, 2.0), 4000.0, 1e-9);
    EXPECT_EQ(throughput_bps(100.0, 0.0), 0.0);
}

TEST(Units, DurationsAndEnergy) {
    EXPECT_EQ(format_duration(960.0), "16 min");
    EXPECT_EQ(format_duration(1.5e-3), "1.5 ms");
    EXPECT_EQ(format_energy(1e-3), "1 mJ");
    EXPECT_EQ(format_energy(10200.0), "10.2 kJ");
    EXPECT_EQ(format_count(262144), "256K");
    EXPECT_EQ(format_count(3), "3");
}

TEST(Format, Placeholders) {
    EXPECT_EQ(format("{} + {} = {}", 1, 2, 3), "1 + 2 = 3");
    EXPECT_EQ(format("{:.2f}", 3.14159), "3.14");
    EXPECT_EQ(format("{:.3g}", 123456.0), "1.23e+05");
    EXPECT_EQ(format("{{literal}}"), "{literal}");
    EXPECT_EQ(format("trailing {}", std::string("str")), "trailing str");
}

TEST(Error, CheckMacroThrowsWithContext) {
    try {
        MW_CHECK(1 == 2, "math broke");
        FAIL() << "expected throw";
    } catch (const InvalidArgument& e) {
        EXPECT_NE(std::string(e.what()).find("math broke"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
    }
}

}  // namespace
