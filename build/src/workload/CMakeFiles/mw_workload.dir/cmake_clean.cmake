file(REMOVE_RECURSE
  "CMakeFiles/mw_workload.dir/generator.cpp.o"
  "CMakeFiles/mw_workload.dir/generator.cpp.o.d"
  "CMakeFiles/mw_workload.dir/stream.cpp.o"
  "CMakeFiles/mw_workload.dir/stream.cpp.o.d"
  "CMakeFiles/mw_workload.dir/trace.cpp.o"
  "CMakeFiles/mw_workload.dir/trace.cpp.o.d"
  "libmw_workload.a"
  "libmw_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mw_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
