// Model-check suite: runs the mw::mc schedule explorer against the repo's
// lock-free protocols (SPSC ring, the hot path's MPMC steal ring and epoch
// snapshot cell, breaker half-open gate, server lifecycle flags, trace span
// ring) plus the mutation proofs the checker exists for — rings/cells with
// weakened memory orders and a probe gate with its CAS replaced by
// check-then-act must ALL be caught, with schedules that replay
// deterministically, while the unmutated protocols exhaust cleanly.
//
// Built only under -DMW_MODEL_CHECK=ON (the `model-check` CMake preset);
// the bodies must be deterministic per schedule: fresh state every run, no
// wall clock, no external randomness.
//
// Nightly sweep knobs (see .github/workflows/ci.yml, job mc-nightly):
//   MW_MC_SEED=N        base seed for the RandomSweep tests (default 1)
//   MW_MC_SCHEDULES=N   samples per sweep body (default 200)
//   MW_MC_ARTIFACT=path on failure, append failing seed + trace + message
#ifndef MW_MODEL_CHECK
#error "test_mc.cpp requires -DMW_MODEL_CHECK=ON (use the model-check preset)"
#endif

#include <array>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/epoch_cell.hpp"
#include "common/mpmc_ring.hpp"
#include "common/spsc_ring.hpp"
#include "common/sync.hpp"
#include "common/timer.hpp"
#include "fault/health.hpp"
#include "mc/mc.hpp"
#include "obs/trace.hpp"

namespace {

using mw::mc::Options;
using mw::mc::Result;
using mw::mc::Sim;
using mw::mc::Strategy;

Options exhaustive(int preemption_bound = 2) {
    Options options;
    options.strategy = Strategy::kExhaustive;
    options.preemption_bound = preemption_bound;
    return options;
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
    const char* raw = std::getenv(name);
    if (raw == nullptr || *raw == '\0') return fallback;
    return static_cast<std::uint64_t>(std::strtoull(raw, nullptr, 10));
}

/// Nightly-sweep plumbing: persist everything needed to reproduce a failing
/// sample (the CI job uploads the file as an artifact).
void dump_artifact(const char* test, const Result& result) {
    const char* path = std::getenv("MW_MC_ARTIFACT");
    if (path == nullptr || *path == '\0') return;
    std::ofstream out(path, std::ios::app);
    out << "test: " << test << "\n"
        << "failing_seed: " << result.failing_seed << "\n"
        << "failing_trace: " << result.failing_trace << "\n"
        << "message: " << result.message << "\n---\n";
}

// ---------------------------------------------------------------------------
// SPSC ring
// ---------------------------------------------------------------------------

/// Producer pushes 0,1,2 through a capacity-2 ring (so slot reuse is
/// exercised); consumer drains what it can. Attempts are bounded — an
/// unbounded spin would (correctly) trip the step budget on schedules where
/// the peer never runs. Invariant: the popped values are an in-order prefix
/// of the pushed sequence.
template <typename Ring>
void spsc_body(Sim& sim) {
    auto ring = std::make_shared<Ring>(2);
    sim.thread([ring] {
        for (int i = 0; i < 3; ++i) {
            for (int attempt = 0; attempt < 2; ++attempt) {
                if (ring->try_push(int{i})) break;
            }
        }
    });
    sim.thread([ring] {
        std::vector<int> got;
        for (int attempt = 0; attempt < 6; ++attempt) {
            int v = -1;
            if (ring->try_pop(v)) got.push_back(v);
        }
        for (std::size_t j = 0; j < got.size(); ++j) {
            MC_ASSERT_MSG(got[j] == static_cast<int>(j),
                          "SPSC ring broke FIFO order");
        }
    });
    sim.join_all();
}

void spsc_body_correct(Sim& sim) { spsc_body<mw::SpscRing<int>>(sim); }

/// The mutation the checker must catch: indices published/consumed relaxed,
/// so nothing orders the slot write against the slot read.
using RelaxedRing =
    mw::SpscRing<int, std::memory_order_relaxed, std::memory_order_relaxed>;
void spsc_body_relaxed(Sim& sim) { spsc_body<RelaxedRing>(sim); }

TEST(McSpscRing, ExhaustivePassesWithAcquireRelease) {
    const Result r = mw::mc::check(exhaustive(), spsc_body_correct);
    EXPECT_FALSE(r.failed) << r.message;
    EXPECT_TRUE(r.exhausted) << "state space unexpectedly large: " << r.schedules;
    EXPECT_GT(r.schedules, 1u);
}

TEST(McSpscRing, RelaxedOrderMutationIsCaughtAndReplays) {
    const Result r = mw::mc::check(exhaustive(), spsc_body_relaxed);
    ASSERT_TRUE(r.failed) << "weakened ring escaped " << r.schedules << " schedules";
    EXPECT_NE(r.message.find("data race"), std::string::npos) << r.message;
    EXPECT_NE(r.message.find("SpscRing slot"), std::string::npos) << r.message;
    ASSERT_FALSE(r.failing_trace.empty());

    // The printed trace replays the exact schedule: same failure, same picks
    // (messages embed heap addresses, which may vary between runs).
    const Result again = mw::mc::replay(exhaustive(), r, spsc_body_relaxed);
    ASSERT_TRUE(again.failed);
    EXPECT_NE(again.message.find("data race"), std::string::npos) << again.message;
    EXPECT_EQ(again.failing_trace, r.failing_trace);
}

// ---------------------------------------------------------------------------
// MPMC ring: steal (non-owner dequeue) racing the owner's pop
// ---------------------------------------------------------------------------

/// One producer feeds a capacity-2 ring while the shard owner and a thief
/// dequeue concurrently — on MpmcRing a steal IS a pop issued from another
/// thread, so two racing consumers exercise the entire steal protocol.
/// Capacity covers both pushes, so the producer never spins on a full ring;
/// consumer attempts are bounded for the same step-budget reason as the
/// SPSC body. Invariants: each consumer's own values arrive in claim order,
/// and across both consumers plus the post-join drain every pushed value is
/// consumed exactly once — a double-claimed slot (the steal bug the per-slot
/// sequence numbers exist to prevent) shows up as a duplicate.
template <typename Ring>
void mpmc_steal_body(Sim& sim) {
    auto ring = std::make_shared<Ring>(2);
    auto got = std::make_shared<std::array<std::vector<int>, 2>>();
    sim.thread([ring] {
        MC_ASSERT_MSG(ring->try_push(1) && ring->try_push(2),
                      "push failed with free capacity");
    });
    for (std::size_t c = 0; c < 2; ++c) {
        sim.thread([ring, got, c] {
            for (int attempt = 0; attempt < 3; ++attempt) {
                int v = -1;
                if (ring->try_pop(v)) (*got)[c].push_back(v);
            }
        });
    }
    sim.join_all();
    std::vector<int> all;
    for (const std::vector<int>& lane : *got) {
        for (std::size_t j = 1; j < lane.size(); ++j) {
            MC_ASSERT_MSG(lane[j - 1] < lane[j],
                          "one consumer saw values out of claim order");
        }
        all.insert(all.end(), lane.begin(), lane.end());
    }
    for (int v = -1; ring->try_pop(v);) all.push_back(v);  // bounded leftovers
    std::array<int, 3> seen{};
    for (const int v : all) {
        MC_ASSERT_MSG(v == 1 || v == 2, "popped a value never pushed");
        seen[static_cast<std::size_t>(v)] += 1;
    }
    MC_ASSERT_MSG(seen[1] == 1 && seen[2] == 1,
                  "steal vs pop lost or duplicated a request");
}

void mpmc_steal_body_correct(Sim& sim) { mpmc_steal_body<mw::MpmcRing<int>>(sim); }

/// The mutation: per-slot sequence numbers published/consumed relaxed, so a
/// claimed slot's payload read is unordered with the producer's write.
using RelaxedMpmcRing =
    mw::MpmcRing<int, std::memory_order_relaxed, std::memory_order_relaxed>;
void mpmc_steal_body_relaxed(Sim& sim) { mpmc_steal_body<RelaxedMpmcRing>(sim); }

TEST(McMpmcRing, StealVsPopExhaustsWithAcquireRelease) {
    const Result r = mw::mc::check(exhaustive(), mpmc_steal_body_correct);
    EXPECT_FALSE(r.failed) << r.message;
    EXPECT_TRUE(r.exhausted) << "state space unexpectedly large: " << r.schedules;
    EXPECT_GT(r.schedules, 1u);
}

TEST(McMpmcRing, RelaxedOrderMutationIsCaughtAndReplays) {
    const Result r = mw::mc::check(exhaustive(), mpmc_steal_body_relaxed);
    ASSERT_TRUE(r.failed) << "weakened MPMC ring escaped " << r.schedules
                          << " schedules";
    EXPECT_NE(r.message.find("data race"), std::string::npos) << r.message;
    EXPECT_NE(r.message.find("MpmcRing slot"), std::string::npos) << r.message;
    ASSERT_FALSE(r.failing_trace.empty());

    const Result again = mw::mc::replay(exhaustive(), r, mpmc_steal_body_relaxed);
    ASSERT_TRUE(again.failed);
    EXPECT_NE(again.message.find("data race"), std::string::npos) << again.message;
    EXPECT_EQ(again.failing_trace, r.failing_trace);
}

// ---------------------------------------------------------------------------
// EpochCell: snapshot publish vs lock-free reader pin
// ---------------------------------------------------------------------------

/// Snapshot payload whose words are written under a test-side race
/// annotation; EpochCell's read-side annotation (ReadGuard::get) pairs with
/// it, so a reader that can reach the snapshot without an ordering edge from
/// the publishing flip reports a race instead of silently reading
/// potentially-torn words.
struct McSnapshot {
    std::uint64_t a;
    std::uint64_t b;
    explicit McSnapshot(std::uint64_t seed) : a(seed), b(~seed) {
        MW_MC_RACE_WRITE(this, "snapshot words");
    }
    void validate() const {
        MC_ASSERT_MSG(b == ~a, "EpochCell reader saw a torn snapshot");
    }
};

/// A writer publishes one snapshot while a reader pins and validates.
/// Exactly one publish on purpose: before the first flip the inactive slot
/// cannot carry a pinned reader, so the writer's drain loop never spins —
/// an interleaving that parks a reader inside a drained slot would otherwise
/// be explored straight into the step budget.
template <typename Cell>
void epoch_cell_body(Sim& sim) {
    auto cell =
        std::make_shared<Cell>(std::make_unique<const McSnapshot>(std::uint64_t{1}));
    sim.thread([cell] {
        cell->publish(std::make_unique<const McSnapshot>(std::uint64_t{2}));
    });
    sim.thread([cell] {
        const auto guard = cell->read();
        guard->validate();
        MC_ASSERT_MSG(guard->a == 1 || guard->a == 2,
                      "EpochCell reader pinned a foreign snapshot");
    });
    sim.join_all();
    const auto guard = cell->read();
    guard->validate();
    MC_ASSERT(guard->a == 2);
}

void epoch_cell_body_correct(Sim& sim) { epoch_cell_body<mw::EpochCell<McSnapshot>>(sim); }

/// The mutation: the Dekker handshake's seq_cst pair weakened to relaxed on
/// both sides (pin increment and flip store) — the flip no longer carries a
/// release edge, so a pinned reader reaches the fresh snapshot with no
/// happens-before from its construction.
using WeakEpochCell = mw::EpochCell<McSnapshot, std::memory_order_relaxed,
                                    std::memory_order_relaxed>;
void epoch_cell_body_weak(Sim& sim) { epoch_cell_body<WeakEpochCell>(sim); }

TEST(McEpochCell, PublishVsReadExhaustsWithSeqCstHandshake) {
    const Result r = mw::mc::check(exhaustive(), epoch_cell_body_correct);
    EXPECT_FALSE(r.failed) << r.message;
    EXPECT_TRUE(r.exhausted) << "state space unexpectedly large: " << r.schedules;
    EXPECT_GT(r.schedules, 1u);
}

TEST(McEpochCell, WeakenedHandshakeMutationIsCaughtAndReplays) {
    const Result r = mw::mc::check(exhaustive(), epoch_cell_body_weak);
    ASSERT_TRUE(r.failed) << "weakened EpochCell escaped " << r.schedules
                          << " schedules";
    EXPECT_NE(r.message.find("data race"), std::string::npos) << r.message;
    EXPECT_NE(r.message.find("EpochCell payload"), std::string::npos) << r.message;
    ASSERT_FALSE(r.failing_trace.empty());

    const Result again = mw::mc::replay(exhaustive(), r, epoch_cell_body_weak);
    ASSERT_TRUE(again.failed);
    EXPECT_NE(again.message.find("data race"), std::string::npos) << again.message;
    EXPECT_EQ(again.failing_trace, r.failing_trace);
}

// ---------------------------------------------------------------------------
// Breaker probe gate (lock-free fixture) — mutation proof for the CAS
// ---------------------------------------------------------------------------

/// Lock-free model of the half-open admission decision: the open->half-open
/// transition must admit exactly one probe. The correct variant claims the
/// transition with a CAS; the mutated one uses load-then-store check-then-act
/// (the bug you get by "simplifying" the CAS away).
struct ProbeGate {
    static constexpr int kOpen = 0;
    static constexpr int kHalfOpen = 1;
    mw::Atomic<int> state{kOpen};
    mw::Atomic<int> probes{0};

    bool try_admit_cas() {
        int expected = kOpen;
        if (state.compare_exchange_strong(expected, kHalfOpen,
                                          std::memory_order_acq_rel)) {
            probes.fetch_add(1, std::memory_order_relaxed);
            return true;
        }
        return false;
    }

    bool try_admit_racy() {
        if (state.load(std::memory_order_acquire) == kOpen) {
            state.store(kHalfOpen, std::memory_order_release);
            probes.fetch_add(1, std::memory_order_relaxed);
            return true;
        }
        return false;
    }
};

template <bool kUseCas>
void probe_gate_body(Sim& sim) {
    auto gate = std::make_shared<ProbeGate>();
    for (int t = 0; t < 2; ++t) {
        sim.thread([gate] {
            if (kUseCas) {
                (void)gate->try_admit_cas();
            } else {
                (void)gate->try_admit_racy();
            }
        });
    }
    sim.join_all();
    MC_ASSERT_MSG(gate->probes.load(std::memory_order_relaxed) == 1,
                  "half-open window admitted more than one probe");
}

TEST(McProbeGate, CasAdmitsExactlyOneAcrossAllSchedules) {
    const Result r = mw::mc::check(exhaustive(), probe_gate_body<true>);
    EXPECT_FALSE(r.failed) << r.message;
    EXPECT_TRUE(r.exhausted);
}

TEST(McProbeGate, CheckThenActMutationIsCaughtAndReplays) {
    const Result r = mw::mc::check(exhaustive(), probe_gate_body<false>);
    ASSERT_TRUE(r.failed) << "check-then-act gate escaped " << r.schedules
                          << " schedules";
    EXPECT_NE(r.message.find("more than one probe"), std::string::npos)
        << r.message;

    const Result again = mw::mc::replay(exhaustive(), r, probe_gate_body<false>);
    ASSERT_TRUE(again.failed);
    EXPECT_NE(again.message.find("more than one probe"), std::string::npos)
        << again.message;
    EXPECT_EQ(again.failing_trace, r.failing_trace);
}

// ---------------------------------------------------------------------------
// DeviceHealthTracker: the real component, half-open window race
// ---------------------------------------------------------------------------

/// Two threads race allow() the instant the cooldown elapses. The first
/// transitions open -> half-open and is the probe; the second must see the
/// fresh last_probe_s and be refused. Every explored schedule must admit
/// exactly one caller.
void breaker_half_open_body(Sim& sim) {
    auto clock = std::make_shared<mw::ManualClock>(0.0);
    mw::fault::HealthConfig config;
    config.consecutive_failures_to_open = 3;
    config.cooldown_s = 0.25;
    config.probe_interval_s = 0.05;
    auto tracker = std::make_shared<mw::fault::DeviceHealthTracker>(config, *clock);
    for (int i = 0; i < 3; ++i) tracker->on_failure("gpu0");
    MC_ASSERT(tracker->state("gpu0") == mw::fault::BreakerState::kOpen);
    clock->advance(config.cooldown_s + 0.01);

    auto admitted = std::make_shared<mw::Atomic<int>>(0);
    for (int t = 0; t < 2; ++t) {
        sim.thread([tracker, admitted] {
            if (tracker->allow("gpu0")) {
                admitted->fetch_add(1, std::memory_order_relaxed);
            }
        });
    }
    sim.join_all();
    MC_ASSERT_MSG(admitted->load(std::memory_order_relaxed) == 1,
                  "half-open breaker admitted != 1 probe");
    MC_ASSERT(tracker->state("gpu0") == mw::fault::BreakerState::kHalfOpen);
}

TEST(McBreaker, HalfOpenWindowAdmitsExactlyOneProbe) {
    const Result r = mw::mc::check(exhaustive(), breaker_half_open_body);
    EXPECT_FALSE(r.failed) << r.message;
    EXPECT_TRUE(r.exhausted) << "state space unexpectedly large: " << r.schedules;
}

// ---------------------------------------------------------------------------
// Server lifecycle flags
// ---------------------------------------------------------------------------

/// Model of serve::Server's running_/stopped_ protocol (server.cpp): start()
/// claims running_ with an exchange so only one caller boots the pool, and
/// stop() claims stopped_ the same way so only one caller drains.
struct ServerFlags {
    mw::Atomic<bool> running{false};
    mw::Atomic<bool> stopped{false};
    mw::Atomic<int> boots{0};
    mw::Atomic<int> drains{0};

    void start() {
        if (running.exchange(true, std::memory_order_acq_rel)) return;
        boots.fetch_add(1, std::memory_order_relaxed);
    }
    void stop() {
        if (stopped.exchange(true, std::memory_order_acq_rel)) return;
        (void)running.exchange(false, std::memory_order_acq_rel);
        drains.fetch_add(1, std::memory_order_relaxed);
    }
};

void server_flags_body(Sim& sim) {
    auto flags = std::make_shared<ServerFlags>();
    sim.thread([flags] { flags->start(); });
    sim.thread([flags] { flags->start(); });
    sim.join_all();
    MC_ASSERT_MSG(flags->boots.load(std::memory_order_relaxed) == 1,
                  "two start() calls both booted");
    MC_ASSERT(flags->running.load(std::memory_order_acquire));
}

void server_stop_body(Sim& sim) {
    auto flags = std::make_shared<ServerFlags>();
    flags->start();
    sim.thread([flags] { flags->stop(); });
    sim.thread([flags] { flags->stop(); });
    sim.join_all();
    MC_ASSERT_MSG(flags->drains.load(std::memory_order_relaxed) == 1,
                  "two stop() calls both drained");
    MC_ASSERT(!flags->running.load(std::memory_order_acquire));
    MC_ASSERT(flags->stopped.load(std::memory_order_acquire));
}

TEST(McServerFlags, StartIsIdempotentAcrossAllSchedules) {
    const Result r = mw::mc::check(exhaustive(), server_flags_body);
    EXPECT_FALSE(r.failed) << r.message;
    EXPECT_TRUE(r.exhausted);
}

TEST(McServerFlags, StopDrainsExactlyOnceAcrossAllSchedules) {
    const Result r = mw::mc::check(exhaustive(), server_stop_body);
    EXPECT_FALSE(r.failed) << r.message;
    EXPECT_TRUE(r.exhausted);
}

// ---------------------------------------------------------------------------
// TraceRecorder span ring: record vs snapshot
// ---------------------------------------------------------------------------

/// One thread publishes spans into its per-thread ring while another
/// snapshots. snapshot() must only read slots below the acquired published
/// count — the MW_MC_RACE annotations in trace.cpp turn any overread into a
/// reported race.
void trace_ring_body(Sim& sim) {
    mw::obs::TraceConfig config;
    config.ring_capacity = 4;
    auto recorder = std::make_shared<mw::obs::TraceRecorder>(config);
    sim.thread([recorder] {
        recorder->record(mw::obs::Phase::kSubmit, 1, 0.0, 0.1, "s1");
        recorder->record(mw::obs::Phase::kComplete, 1, 0.1, 0.2, "s2");
    });
    sim.thread([recorder] {
        const std::vector<mw::obs::Span> spans = recorder->snapshot();
        MC_ASSERT_MSG(spans.size() <= 2, "snapshot saw unpublished spans");
    });
    sim.join_all();
    MC_ASSERT(recorder->snapshot().size() == 2);
    MC_ASSERT(recorder->dropped() == 0);
}

TEST(McTraceRing, SnapshotNeverReadsUnpublishedSlots) {
    const Result r = mw::mc::check(exhaustive(), trace_ring_body);
    EXPECT_FALSE(r.failed) << r.message;
    EXPECT_TRUE(r.exhausted) << "state space unexpectedly large: " << r.schedules;
}

// ---------------------------------------------------------------------------
// Engine behaviour: random sampling, seed replay, livelock detection
// ---------------------------------------------------------------------------

/// Classic lost update: load-then-store increments drop one when the two
/// threads interleave between the load and the store.
template <bool kUseFetchAdd>
void counter_body(Sim& sim) {
    auto counter = std::make_shared<mw::Atomic<int>>(0);
    for (int t = 0; t < 2; ++t) {
        sim.thread([counter] {
            if (kUseFetchAdd) {
                counter->fetch_add(1, std::memory_order_relaxed);
            } else {
                const int v = counter->load(std::memory_order_relaxed);
                counter->store(v + 1, std::memory_order_relaxed);
            }
        });
    }
    sim.join_all();
    MC_ASSERT_MSG(counter->load(std::memory_order_relaxed) == 2, "lost update");
}

TEST(McEngine, ExhaustiveFindsLostUpdateAndFetchAddFixesIt) {
    const Result bad = mw::mc::check(exhaustive(1), counter_body<false>);
    ASSERT_TRUE(bad.failed);
    EXPECT_NE(bad.message.find("lost update"), std::string::npos) << bad.message;

    const Result good = mw::mc::check(exhaustive(1), counter_body<true>);
    EXPECT_FALSE(good.failed) << good.message;
    EXPECT_TRUE(good.exhausted);
}

TEST(McEngine, RandomSamplingFindsBugAndSeedReplayIsDeterministic) {
    Options options;
    options.strategy = Strategy::kRandom;
    options.seed = env_u64("MW_MC_SEED", 1);
    options.max_schedules = 500;
    const Result r = mw::mc::check(options, counter_body<false>);
    ASSERT_TRUE(r.failed) << "random sampling missed the lost update in "
                          << r.schedules << " samples";
    ASSERT_NE(r.failing_seed, 0u);

    // Replaying by effective seed alone (no trace) reproduces the failure on
    // the identical schedule. Compare pick sequences, not messages — the
    // message embeds heap addresses that legitimately vary between runs.
    Options by_seed;
    by_seed.strategy = Strategy::kReplay;
    by_seed.replay_seed = r.failing_seed;
    const Result again = mw::mc::check(by_seed, counter_body<false>);
    ASSERT_TRUE(again.failed);
    EXPECT_EQ(again.failing_trace, r.failing_trace);
    EXPECT_NE(again.message.find("lost update"), std::string::npos) << again.message;
}

TEST(McEngine, SpinOnNeverPublishedFlagReportsStepBudgetLivelock) {
    Options options = exhaustive();
    options.max_steps = 200;
    options.max_schedules = 4;
    const Result r = mw::mc::check(options, [](Sim& sim) {
        auto flag = std::make_shared<mw::Atomic<bool>>(false);
        sim.thread([flag] {
            while (!flag->load(std::memory_order_acquire)) {
            }
        });
        sim.join_all();
    });
    ASSERT_TRUE(r.failed);
    EXPECT_NE(r.message.find("step budget"), std::string::npos) << r.message;
}

// ---------------------------------------------------------------------------
// Nightly random sweep (MW_MC_SEED / MW_MC_SCHEDULES from the environment)
// ---------------------------------------------------------------------------

struct SweepBody {
    const char* name;
    void (*body)(Sim&);
};

TEST(McNightly, RandomSweepOverAllProtocols) {
    const SweepBody bodies[] = {
        {"spsc_ring", spsc_body_correct},
        {"mpmc_steal", mpmc_steal_body_correct},
        {"epoch_cell", epoch_cell_body_correct},
        {"probe_gate_cas", probe_gate_body<true>},
        {"breaker_half_open", breaker_half_open_body},
        {"server_flags_start", server_flags_body},
        {"server_flags_stop", server_stop_body},
        {"trace_ring", trace_ring_body},
    };
    Options options;
    options.strategy = Strategy::kRandom;
    options.seed = env_u64("MW_MC_SEED", 1);
    options.max_schedules = env_u64("MW_MC_SCHEDULES", 200);
    for (const SweepBody& sweep : bodies) {
        const Result r = mw::mc::check(options, sweep.body);
        if (r.failed) dump_artifact(sweep.name, r);
        EXPECT_FALSE(r.failed)
            << sweep.name << " failed under seed " << r.failing_seed
            << " (replay with replay_seed or trace below)\n"
            << r.message;
    }
}

}  // namespace
