// The Dispatcher of the paper's Fig. 2: receives architecture descriptions,
// has the Model Building Module build them, the Weights Building Module
// create/restore the parameter buffers, and finally loads every model onto
// every available processing device.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "common/sync.hpp"

#include "device/registry.hpp"
#include "graph/schedule.hpp"
#include "nn/model.hpp"

namespace mw::fault {
class FaultInjector;
class DeviceHealthTracker;
}  // namespace mw::fault

namespace mw::sched {

/// Retry ladder for run_resilient(): capped exponential backoff on the
/// simulated timeline (the backoff is added to the submit time of the next
/// attempt, never slept on a wall clock).
struct RetryPolicy {
    std::size_t max_attempts = 3;     ///< total tries, including the first
    double backoff_base_s = 0.001;    ///< delay before the second attempt
    double backoff_multiplier = 2.0;  ///< growth per further attempt
    double backoff_cap_s = 0.050;     ///< ceiling on any single delay
};

/// What run_resilient() actually did, alongside the result.
struct ResilientOutcome {
    device::InferenceResult result;
    std::string device_name;   ///< device that finally served the work
    std::size_t attempts = 1;  ///< tries consumed (1 = no retry)
    double backoff_s = 0.0;    ///< total simulated backoff added
};

/// Owns the deployed models and routes execution to chosen devices.
///
/// Thread safety: the model table is guarded by a reader-writer lock, so
/// run_on()/lookups from many serving threads proceed concurrently while
/// register_*/deploy/unregister_model remain safe to call at any time. Mutating a model's
/// weights (load_weights_from) while that model is serving is still a logic
/// race the caller must sequence.
class Dispatcher {
public:
    explicit Dispatcher(device::DeviceRegistry& registry);

    /// Fig. 2 steps 1-4: build the model from its spec and initialise
    /// weights; returns the built model for (optional offline) training.
    nn::Model& register_model(nn::ModelSpec spec, std::uint64_t weight_seed);

    /// Register an externally trained model.
    void register_model(std::shared_ptr<nn::Model> model);

    /// Dynamically add a model shipped as a .mwmodel file (§V-A): the
    /// architecture and trained weights are restored and the model becomes
    /// schedulable after deploy(). Returns its name.
    std::string register_from_file(const std::string& path);

    /// Restore a model's weights from a file saved by nn::save_weights.
    void load_weights_from(const std::string& model_name, const std::string& path);

    /// Fig. 2 step 5: load the named model onto every device.
    void deploy(const std::string& model_name);
    void deploy_all();

    /// Retire a model: remove it from the table and unload it from every
    /// device, freeing the name for hot-swap re-registration. In-flight
    /// run_on() calls finish safely — each device pins its model instance
    /// with a shared_ptr for the duration of the run; later lookups throw.
    /// Returns false when the name was not registered.
    bool unregister_model(const std::string& model_name);

    [[nodiscard]] bool has_model(const std::string& model_name) const;
    [[nodiscard]] const nn::Model& model(const std::string& model_name) const;
    [[nodiscard]] const nn::ModelDesc& desc(const std::string& model_name) const;
    [[nodiscard]] std::vector<std::string> model_names() const;

    /// Execute a data-carrying request on a specific device. When a fault
    /// injector is installed this is the injection point: the call may throw
    /// fault::TransientFault / fault::DeviceDownError, or return a
    /// straggler-stretched measurement.
    device::InferenceResult run_on(const std::string& device_name,
                                   const std::string& model_name, const Tensor& input,
                                   double sim_time,
                                   const device::SubmitOptions& options = {});

    /// Execute with retry-on-fault across a preference-ordered candidate
    /// list: attempt i runs on candidates[i % size] at
    /// sim_time + accumulated backoff. Only fault::FaultError is retried —
    /// precondition errors (unknown model, bad batch) propagate immediately,
    /// since no other device would answer them either. Each failure is
    /// reported to `health` (when given), emits a kRetry span, and backs off
    /// exponentially up to the cap; exhausting the ladder rethrows the last
    /// fault. Success reports on_success to `health`.
    ResilientOutcome run_resilient(const std::vector<std::string>& candidates,
                                   const std::string& model_name, const Tensor& input,
                                   double sim_time, const RetryPolicy& policy,
                                   fault::DeviceHealthTracker* health = nullptr,
                                   const device::SubmitOptions& options = {});

    /// Execute a planned DAG schedule: book every step's priced interval on
    /// its device, in plan order, respecting cross-device precedence on the
    /// actual timeline (a queue-delayed producer pushes its consumers).
    /// `schedule.devices` must name registered devices. Returns the schedule
    /// re-timed with what the devices actually did — still feasible under
    /// verify_schedule(), since phase durations and grouping are preserved
    /// and starts only ever move later.
    graph::Schedule run_schedule(const graph::Graph& graph, const graph::Schedule& schedule,
                                 double sim_time);

    /// Install (or clear, with nullptr) the fault injector consulted by
    /// run_on. The injector must outlive its installation.
    void set_fault_injector(fault::FaultInjector* injector) {
        injector_.store(injector, std::memory_order_release);
    }
    [[nodiscard]] fault::FaultInjector* fault_injector() const {
        return injector_.load(std::memory_order_acquire);
    }

    [[nodiscard]] device::DeviceRegistry& registry() { return *registry_; }

private:
    [[nodiscard]] std::shared_ptr<nn::Model> find_model(const std::string& model_name) const;

    device::DeviceRegistry* registry_;
    Atomic<fault::FaultInjector*> injector_{nullptr};
    mutable SharedMutex models_mutex_{LockRank::kDispatcher};
    std::map<std::string, std::shared_ptr<nn::Model>> models_ MW_GUARDED_BY(models_mutex_);
};

}  // namespace mw::sched
