# Empty dependencies file for mw_common.
# This may be replaced when dependencies are built.
