// CSV emission for bench outputs so figures can be re-plotted externally.
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

namespace mw {

/// Streaming CSV writer. Values containing commas/quotes are quoted.
class CsvWriter {
public:
    /// Open (truncate) `path`; throws mw::IoError on failure.
    explicit CsvWriter(const std::string& path);

    /// Write one row; all values are stringified by the caller.
    void row(std::initializer_list<std::string_view> cells);
    void row(const std::vector<std::string>& cells);

    [[nodiscard]] const std::string& path() const { return path_; }

private:
    void write_cell(std::string_view cell, bool first);

    std::string path_;
    std::ofstream out_;
};

/// Parse a CSV file fully into memory (small files: traces, datasets).
/// Handles quoted cells; throws mw::IoError when the file cannot be read.
std::vector<std::vector<std::string>> read_csv(const std::string& path);

}  // namespace mw
