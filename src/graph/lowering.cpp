#include "graph/lowering.hpp"

#include <utility>

#include "common/error.hpp"

namespace mw::graph {

LoweredGraph lower(const nn::Model& model, std::size_t batch) {
    MW_CHECK(batch > 0, "lower() requires batch > 0");
    LoweredGraph lowered;
    lowered.graph.set_name(model.name() + "@b" + std::to_string(batch));

    Shape shape = model.input_shape(batch);
    for (std::size_t i = 0; i < model.layer_count(); ++i) {
        const nn::Layer& layer = model.layer(i);
        OpNode node;
        node.name = layer.describe();
        node.cost = layer.cost(shape);
        shape = layer.output_shape(shape);
        node.out_bytes = static_cast<double>(shape.numel()) * sizeof(float);
        if (i == 0) {
            node.external_in_bytes =
                static_cast<double>(batch) * static_cast<double>(model.bytes_per_sample());
        } else {
            node.inputs = {i - 1};
        }
        lowered.graph.add_node(std::move(node));
        lowered.layer_of.push_back(i);
    }
    lowered.graph.validate();
    return lowered;
}

Tensor run_grouped(const nn::Model& model, const Tensor& input,
                   const std::vector<std::vector<std::size_t>>& groups, ThreadPool* pool) {
    std::size_t expect = 0;
    for (const auto& group : groups) {
        MW_CHECK(!group.empty(), "run_grouped(): empty group");
        for (const std::size_t layer : group) {
            MW_CHECK(layer == expect, "run_grouped(): groups must cover layers in order");
            ++expect;
        }
    }
    MW_CHECK(expect == model.layer_count(), "run_grouped(): groups must cover every layer");

    Tensor cur = input;  // the input arrives from slow memory
    for (const auto& group : groups) {
        for (const std::size_t layer : group) {
            const nn::Layer& l = model.layer(layer);
            Tensor out(l.output_shape(cur.shape()));
            l.forward(cur, out, pool);
            cur = std::move(out);
        }
        Tensor spilled = cur;  // cut edge: round-trip through slow memory
        cur = std::move(spilled);
    }
    return cur;
}

}  // namespace mw::graph
