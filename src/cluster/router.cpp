#include "cluster/router.hpp"

#include <algorithm>
#include <utility>

#include "obs/trace.hpp"

namespace mw::cluster {
namespace {

/// FNV-1a + murmur3 finalizer for ring points and request keys. The
/// placement must be identical across hosts and runs, so std::hash
/// (implementation-defined) is out. Raw FNV-1a is not enough either: the
/// last input byte moves the hash by at most ~2^48 (one multiply by the
/// 2^40-sized prime), so sequential ids like "model#1", "model#2" would all
/// land in the same ring arc (arcs average 2^64/points wide). The finalizer
/// diffuses low-byte changes across all 64 bits.
std::uint64_t fnv1a(const std::string& text) {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : text) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 0x100000001b3ULL;
    }
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    h *= 0xc4ceb9fe1a85ec53ULL;
    h ^= h >> 33;
    return h;
}

}  // namespace

Router::Router(const Clock& clock, Transport& transport, RouterConfig config,
               obs::MetricsRegistry* metrics)
    : config_(std::move(config)), clock_(&clock), transport_(&transport),
      owned_metrics_(metrics == nullptr ? std::make_unique<obs::MetricsRegistry>()
                                        : nullptr),
      metrics_(metrics == nullptr ? owned_metrics_.get() : metrics),
      health_(config_.health, clock, metrics_) {
    MW_CHECK(!config_.name.empty(), "Router: name must be non-empty");
    MW_CHECK(config_.request_timeout_s > 0.0,
             "Router: request_timeout_s must be > 0");
    MW_CHECK(config_.max_attempts >= 1, "Router: max_attempts must be >= 1");
    MW_CHECK(config_.vnodes_per_node >= 1, "Router: vnodes_per_node must be >= 1");
    submitted_metric_ = &metrics_->counter("mw_cluster_submitted_total");
    completed_metric_ = &metrics_->counter("mw_cluster_completed_total");
    failed_metric_ = &metrics_->counter("mw_cluster_failed_total");
    rejected_metric_ = &metrics_->counter("mw_cluster_rejected_total");
    shutdown_metric_ = &metrics_->counter("mw_cluster_shutdown_total");
    rerouted_metric_ = &metrics_->counter("mw_cluster_rerouted_total");
    hedges_metric_ = &metrics_->counter("mw_cluster_hedges_total");
    timeouts_metric_ = &metrics_->counter("mw_cluster_timeouts_total");
    transport_->register_endpoint(config_.name,
                                  [this](const std::string& from, const Frame& frame) {
                                      handle_frame(from, frame);
                                  });
    maintenance_ = pool_.submit([this] { maintenance_loop(); });
}

Router::~Router() { stop(); }

void Router::add_node(const std::string& node,
                      const std::vector<std::string>& models) {
    MW_CHECK(!node.empty(), "Router: node name must be non-empty");
    const MutexLock lock(mutex_);
    if (nodes_.insert(node).second) {
        outstanding_.emplace(node, 0);
        for (std::size_t v = 0; v < config_.vnodes_per_node; ++v) {
            ring_.emplace_back(fnv1a(node + "#" + std::to_string(v)), node);
        }
        std::sort(ring_.begin(), ring_.end());
    }
    for (const std::string& model : models) {
        auto& replicas = placement_[model];
        if (std::find(replicas.begin(), replicas.end(), node) == replicas.end()) {
            replicas.push_back(node);
        }
    }
}

std::optional<std::string> Router::pick_node(const std::string& model,
                                             std::uint64_t id,
                                             const std::vector<std::string>& exclude) {
    const auto it = placement_.find(model);
    if (it == placement_.end() || it->second.empty()) return std::nullopt;
    std::vector<std::string> candidates;
    candidates.reserve(it->second.size());
    for (const std::string& node : it->second) {
        if (std::find(exclude.begin(), exclude.end(), node) == exclude.end()) {
            candidates.push_back(node);
        }
    }
    if (candidates.empty()) return std::nullopt;
    // The breaker is the admission point: open nodes are skipped, half-open
    // ones admit the occasional probe (that probe is how a healed partition
    // re-admits a replica).
    const std::vector<std::string> allowed =
        health_.partition_allowed(candidates, nullptr);
    if (allowed.empty()) return std::nullopt;

    // A half-open node that allow() just admitted IS the probe: send this
    // request there, or the load-based tie-break below would starve a
    // recovering (idle, but not yet trusted) replica of probes forever.
    for (const std::string& node : allowed) {
        if (health_.state(node) == fault::BreakerState::kHalfOpen) return node;
    }

    if (config_.policy == RoutePolicy::kLeastLoaded) {
        std::size_t best_load = 0;
        std::vector<const std::string*> best;
        for (const std::string& node : allowed) {
            const std::size_t load = outstanding_[node];
            if (best.empty() || load < best_load) {
                best_load = load;
                best.assign(1, &node);
            } else if (load == best_load) {
                best.push_back(&node);
            }
        }
        // Round-robin among the tied minimum, NOT first-by-name: a burst of
        // equal-load picks (idle fleet, or timed-out reroutes landing after
        // everyone drained) would otherwise all pile onto one replica.
        return *best[rr_++ % best.size()];
    }

    // Consistent hash: walk the ring from the request's point until a vnode
    // of an allowed replica appears. The walk is what keeps placement stable
    // when a node is excluded: only its keys move.
    const std::set<std::string> allowed_set(allowed.begin(), allowed.end());
    const std::uint64_t point = fnv1a(model + "#" + std::to_string(id));
    auto start = std::lower_bound(ring_.begin(), ring_.end(),
                                  std::make_pair(point, std::string{}));
    for (std::size_t step = 0; step < ring_.size(); ++step) {
        if (start == ring_.end()) start = ring_.begin();
        if (allowed_set.count(start->second) > 0) return start->second;
        ++start;
    }
    return std::nullopt;
}

void Router::release_charges(const PendingEntry& entry) {
    for (const std::string& node : entry.nodes) {
        auto it = outstanding_.find(node);
        if (it != outstanding_.end() && it->second > 0) --it->second;
    }
}

void Router::count_terminal(serve::RequestStatus status) {
    switch (status) {
        case serve::RequestStatus::kCompleted:
            completed_.fetch_add(1, std::memory_order_relaxed);  // relaxed: monotonic stat, no data published
            completed_metric_->inc();
            break;
        case serve::RequestStatus::kRejectedFull:
            rejected_full_.fetch_add(1, std::memory_order_relaxed);  // relaxed: monotonic stat, no data published
            rejected_metric_->inc();
            break;
        case serve::RequestStatus::kEvicted:
            evicted_.fetch_add(1, std::memory_order_relaxed);  // relaxed: monotonic stat, no data published
            rejected_metric_->inc();
            break;
        case serve::RequestStatus::kShedDeadline:
            shed_.fetch_add(1, std::memory_order_relaxed);  // relaxed: monotonic stat, no data published
            rejected_metric_->inc();
            break;
        case serve::RequestStatus::kShutdown:
            shutdown_.fetch_add(1, std::memory_order_relaxed);  // relaxed: monotonic stat, no data published
            shutdown_metric_->inc();
            break;
        case serve::RequestStatus::kFailed:
            failed_.fetch_add(1, std::memory_order_relaxed);  // relaxed: monotonic stat, no data published
            failed_metric_->inc();
            break;
    }
}

void Router::complete(PendingEntry entry, ClusterResponse response) {
    response.round_trip_s = clock_->now() - entry.submit_s;
    response.attempts = entry.attempts;
    response.hedged = response.hedged || entry.hedged;
    count_terminal(response.status);
    entry.promise.set_value(std::move(response));
}

std::future<ClusterResponse> Router::submit(serve::InferenceRequest request) {
    MW_CHECK(!request.model_name.empty(), "Router: model_name must be non-empty");
    MW_CHECK(request.payload.shape().rank() == 2,
             "Router: payload must be rank-2 (samples, sample_elems)");
    const std::uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);  // relaxed: id uniqueness only, no ordering
    const double now = clock_->now();
    submitted_.fetch_add(1, std::memory_order_relaxed);  // relaxed: monotonic stat, no data published
    submitted_metric_->inc();

    RequestPacket packet;
    packet.id = id;
    packet.model_name = request.model_name;
    packet.policy = request.policy;
    packet.slo_s = request.slo_s;
    packet.sent_at_s = now;
    packet.payload = std::move(request.payload);
    MW_TRACE_INSTANT(obs::Phase::kSerialize, id, now, "request");

    PendingEntry entry;
    entry.frame = packet.serialize();
    entry.model = packet.model_name;
    entry.submit_s = now;
    std::future<ClusterResponse> future = entry.promise.get_future();

    std::optional<std::string> node;
    bool was_stopped = false;
    {
        const MutexLock lock(mutex_);
        if (stopped_.load(std::memory_order_acquire)) {
            was_stopped = true;
        } else {
            node = pick_node(request.model_name, id, {});
            if (node.has_value()) {
                entry.sent_at_s = now;
                entry.deadline_s = now + config_.request_timeout_s;
                entry.nodes.push_back(*node);
                ++outstanding_[*node];
                Frame wire = entry.frame;
                pending_.emplace(id, std::move(entry));
                MW_TRACE_INSTANT(obs::Phase::kRoute, id, now, node->c_str());
                // mw-analyze: allow(blocking-under-lock) simulated transport queues on the
                // injected clock; the lock is held so a reply cannot race the pending insert
                transport_->send(config_.name, *node, std::move(wire), id);
            }
        }
    }
    if (was_stopped) {
        ClusterResponse response;
        response.status = serve::RequestStatus::kShutdown;
        complete(std::move(entry), std::move(response));
    } else if (!node.has_value()) {
        ClusterResponse response;
        response.status = serve::RequestStatus::kFailed;
        response.error = "no healthy replica for model: " + request.model_name;
        complete(std::move(entry), std::move(response));
    }
    return future;
}

void Router::handle_frame(const std::string& from, const Frame& frame) {
    ResponsePacket packet;
    try {
        packet = parse_response(frame);
    } catch (const PacketError&) {
        stale_.fetch_add(1, std::memory_order_relaxed);  // relaxed: monotonic stat, no data published
        return;
    }
    PendingEntry entry;
    {
        const MutexLock lock(mutex_);
        const auto it = pending_.find(packet.id);
        if (it == pending_.end()) {
            // The hedge loser, a response that raced a reroute, or anything
            // arriving after stop() drained the table.
            stale_.fetch_add(1, std::memory_order_relaxed);  // relaxed: monotonic stat, no data published
            return;
        }
        entry = std::move(it->second);
        pending_.erase(it);
        release_charges(entry);
    }
    if (packet.status == serve::RequestStatus::kCompleted) {
        health_.on_success(packet.node_name, packet.execute_s);
    }
    if (entry.attempts > 1) {
        rerouted_.fetch_add(1, std::memory_order_relaxed);  // relaxed: monotonic stat, no data published
    }
    ClusterResponse response;
    response.status = packet.status;
    response.node_name = packet.node_name;
    response.device_name = packet.device_name;
    response.error = packet.error;
    response.outputs = std::move(packet.outputs);
    response.queue_s = packet.queue_s;
    response.execute_s = packet.execute_s;
    response.service_s = packet.service_s;
    response.end_time_s = packet.end_time_s;
    response.energy_j = packet.energy_j;
    response.hedged = packet.hedged;
    const double now = clock_->now();
    MW_TRACE_INSTANT(obs::Phase::kComplete, packet.id, now,
                     status_name(packet.status).c_str());
    complete(std::move(entry), std::move(response));
    (void)from;
}

void Router::maintenance_loop() {
    while (!stopped_.load(std::memory_order_acquire)) {
        sleep_for_seconds(config_.maintenance_poll_s);
        const double now = clock_->now();
        std::vector<PendingEntry> expired;
        {
            const MutexLock lock(mutex_);
            for (auto it = pending_.begin(); it != pending_.end();) {
                PendingEntry& entry = it->second;
                if (now >= entry.deadline_s) {
                    timeouts_.fetch_add(1, std::memory_order_relaxed);  // relaxed: monotonic stat, no data published
                    timeouts_metric_->inc();
                    // Silence past the deadline is the only failure signal a
                    // lossy fabric gives; feed it to the breaker.
                    health_.on_failure(entry.nodes.back());
                    std::optional<std::string> retry;
                    if (entry.attempts < config_.max_attempts) {
                        retry = pick_node(entry.model, it->first,
                                          {entry.nodes.back()});
                    }
                    if (retry.has_value()) {
                        ++entry.attempts;
                        entry.nodes.push_back(*retry);
                        ++outstanding_[*retry];
                        entry.sent_at_s = now;
                        entry.deadline_s = now + config_.request_timeout_s;
                        rerouted_.fetch_add(1, std::memory_order_relaxed);  // relaxed: monotonic stat, no data published
                        rerouted_metric_->inc();
                        MW_TRACE_INSTANT(obs::Phase::kRoute, it->first, now,
                                         ("re:" + *retry).c_str());
                        // mw-analyze: allow(blocking-under-lock) simulated transport, held
                        // deliberately: the reroute must land in pending_ before any reply
                        transport_->send(config_.name, *retry, entry.frame,
                                         it->first);
                        ++it;
                    } else {
                        release_charges(entry);
                        expired.push_back(std::move(entry));
                        it = pending_.erase(it);
                    }
                } else if (!entry.hedged && config_.hedge_timeout_s > 0.0 &&
                           now >= entry.sent_at_s + config_.hedge_timeout_s) {
                    const std::optional<std::string> mate =
                        pick_node(entry.model, it->first, entry.nodes);
                    if (mate.has_value()) {
                        entry.hedged = true;
                        entry.nodes.push_back(*mate);
                        ++outstanding_[*mate];
                        hedges_.fetch_add(1, std::memory_order_relaxed);  // relaxed: monotonic stat, no data published
                        hedges_metric_->inc();
                        health_.note_hedge(*mate);
                        MW_TRACE_INSTANT(obs::Phase::kHedge, it->first, now,
                                         mate->c_str());
                        // mw-analyze: allow(blocking-under-lock) simulated transport, held
                        // deliberately: the hedge must land in pending_ before any reply
                        transport_->send(config_.name, *mate, entry.frame,
                                         it->first);
                    } else {
                        // No second replica to hedge to; stop re-checking.
                        entry.hedged = true;
                    }
                    ++it;
                } else {
                    ++it;
                }
            }
        }
        for (PendingEntry& entry : expired) {
            ClusterResponse response;
            response.status = serve::RequestStatus::kFailed;
            response.error = "replica unreachable after " +
                             std::to_string(entry.attempts) + " attempt(s)";
            response.node_name = entry.nodes.empty() ? "" : entry.nodes.back();
            complete(std::move(entry), std::move(response));
        }
    }
}

void Router::stop() {
    if (stopped_.exchange(true, std::memory_order_acq_rel)) return;
    if (maintenance_.valid()) maintenance_.get();
    std::vector<PendingEntry> drained;
    {
        const MutexLock lock(mutex_);
        for (auto& [id, entry] : pending_) {
            release_charges(entry);
            drained.push_back(std::move(entry));
        }
        pending_.clear();
    }
    for (PendingEntry& entry : drained) {
        ClusterResponse response;
        response.status = serve::RequestStatus::kShutdown;
        complete(std::move(entry), std::move(response));
    }
}

RouterCounters Router::counters() const {
    RouterCounters counters;
    counters.submitted = submitted_.load(std::memory_order_relaxed);  // relaxed: monotonic stat, no data published
    counters.completed = completed_.load(std::memory_order_relaxed);  // relaxed: monotonic stat, no data published
    counters.rejected_full = rejected_full_.load(std::memory_order_relaxed);  // relaxed: monotonic stat, no data published
    counters.evicted = evicted_.load(std::memory_order_relaxed);  // relaxed: monotonic stat, no data published
    counters.shed = shed_.load(std::memory_order_relaxed);  // relaxed: monotonic stat, no data published
    counters.failed = failed_.load(std::memory_order_relaxed);  // relaxed: monotonic stat, no data published
    counters.shutdown = shutdown_.load(std::memory_order_relaxed);  // relaxed: monotonic stat, no data published
    counters.rerouted = rerouted_.load(std::memory_order_relaxed);  // relaxed: monotonic stat, no data published
    counters.hedges = hedges_.load(std::memory_order_relaxed);  // relaxed: monotonic stat, no data published
    counters.timeouts = timeouts_.load(std::memory_order_relaxed);  // relaxed: monotonic stat, no data published
    counters.stale = stale_.load(std::memory_order_relaxed);  // relaxed: monotonic stat, no data published
    return counters;
}

std::size_t Router::pending() const {
    const MutexLock lock(mutex_);
    return pending_.size();
}

std::size_t Router::outstanding(const std::string& node) const {
    const MutexLock lock(mutex_);
    const auto it = outstanding_.find(node);
    return it == outstanding_.end() ? 0 : it->second;
}

}  // namespace mw::cluster
