file(REMOVE_RECURSE
  "CMakeFiles/streaming_burst.dir/streaming_burst.cpp.o"
  "CMakeFiles/streaming_burst.dir/streaming_burst.cpp.o.d"
  "streaming_burst"
  "streaming_burst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_burst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
