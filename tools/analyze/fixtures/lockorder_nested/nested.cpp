// Fixture: intra-function nested acquisition order. good() nests in
// increasing rank order and must stay silent; bad() holds the highest rank
// and then takes a lower one; twice() nests two mutexes of EQUAL rank, the
// self-deadlock shape the runtime validator aborts on.
enum class LockRank { kLow = 10, kMid = 20, kHigh = 30 };

class Pair {
public:
    void good() {
        MutexLock a(low_);
        MutexLock b(mid_);
    }

    void bad() {
        MutexLock a(high_);
        MutexLock b(mid_);  // expect(lock-order-rank)
    }

    void twice() {
        MutexLock a(mid_);
        MutexLock b(mid_twin_);  // expect(lock-order-rank)
    }

    void sequential() {
        { MutexLock a(mid_); }
        { MutexLock b(mid_twin_); }  // not nested: no finding
    }

private:
    Mutex low_{LockRank::kLow};
    Mutex mid_{LockRank::kMid};
    Mutex mid_twin_{LockRank::kMid};
    Mutex high_{LockRank::kHigh};
};
