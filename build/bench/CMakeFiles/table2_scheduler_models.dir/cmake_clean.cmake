file(REMOVE_RECURSE
  "CMakeFiles/table2_scheduler_models.dir/table2_scheduler_models.cpp.o"
  "CMakeFiles/table2_scheduler_models.dir/table2_scheduler_models.cpp.o.d"
  "table2_scheduler_models"
  "table2_scheduler_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_scheduler_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
