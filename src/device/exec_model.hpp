// The analytic execution model: prices one inference batch on one device.
//
// Structure of a discrete-GPU submission (§II-A of the paper):
//   host staging -> PCIe DMA in -> per-layer kernels -> PCIe DMA out
// CPU / iGPU submissions skip the PCIe phases (zero-copy mapping).
//
// Per layer l with cost lc (from nn::LayerCost):
//   feq_l  = flops + work_items * flops_per_item_overhead   (thread-per-node
//            kernels pay a fixed per-item cost: index math, bounds, launch
//            divergence; this is what makes tiny layers inefficient)
//   sat_c  = clamp(work_items / parallel_width)             (latency hiding)
//   t_comp = feq_l / (peak * efficiency * sat_c)
//   t_mem  = bytes / (bandwidth * sat_m)
//   t_l    = max(t_comp, t_mem) + launch_overhead
// The kernel phase runs under the DVFS clock ratio r(t), which ramps
// exponentially from its start value toward 1.0 (GPU Boost); the wall time
// solves integral r dt = full-speed time.
#pragma once

#include "device/params.hpp"
#include "nn/model.hpp"

namespace mw::device {

/// Phase-by-phase timing and energy for one batch on one device.
struct ExecBreakdown {
    double t_host = 0.0;          ///< dispatch / staging
    double t_xfer_in = 0.0;       ///< PCIe DMA towards the device
    double t_kernels = 0.0;       ///< kernel phase, wall time (clock-scaled)
    double t_xfer_out = 0.0;      ///< PCIe DMA of the results
    double t_kernels_full = 0.0;  ///< kernel phase at full boost clock
    double utilisation = 0.0;     ///< flops-weighted compute saturation
    double clock_start = 1.0;
    double clock_end = 1.0;
    double energy_device_j = 0.0;
    double energy_host_j = 0.0;

    [[nodiscard]] double total_s() const {
        return t_host + t_xfer_in + t_kernels + t_xfer_out;
    }
    [[nodiscard]] double energy_j() const { return energy_device_j + energy_host_j; }
    [[nodiscard]] double avg_power_w() const {
        const double t = total_s();
        return t > 0.0 ? energy_j() / t : 0.0;
    }
};

/// Solve for the wall time T such that integral_0^T r(t) dt = work_full,
/// where r(t) = 1 - (1 - r0) * exp(-t / tau). Monotone; bisection.
double solve_ramp_time(double work_full_s, double r0, double tau);

/// Clock ratio after running for `elapsed` seconds from ratio `r0`.
double clock_after_run(double r0, double tau, double elapsed);

/// Clock ratio after idling for `gap` seconds from ratio `r` (decays toward
/// the idle ratio with the decay time constant).
double clock_after_idle(double r, double idle_ratio, double decay_tau, double gap);

/// Price a batch of the given model cost on a device, starting from clock
/// ratio `clock_start`. `bytes_in`/`bytes_out` are the payload sizes that
/// would cross the interconnect for discrete devices.
ExecBreakdown estimate_execution(const DeviceParams& params, const nn::ModelCost& cost,
                                 double bytes_in, double bytes_out, double clock_start);

/// Relative kernel efficiency (0..1] of splitting `total_items` work-items
/// into work-groups of `group_size` on a device — the effect §IV-B of the
/// paper measures: CPUs peak with few large groups (4096 items), discrete
/// GPUs with many small ones (256 items, maximising registers per item).
/// Three factors: per-group dispatch cost, occupancy across compute units,
/// and a register/resource penalty past the device's sweet spot.
double work_group_efficiency(const DeviceParams& params, double group_size,
                             double total_items);

}  // namespace mw::device
